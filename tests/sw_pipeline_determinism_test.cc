// Window-semantics test battery for the sliding-window pipeline (the
// SW analogue of pipeline_determinism_test.cc).
//
// Three layers of bit-for-bit contracts:
//
//   1. Per-lane invariance: lane s of a windowed pool consumes the points
//      at *global* stream positions ≡ s (mod S), stamped with their
//      global position. Its input — including its window-expiry schedule
//      — depends only on (stream, S), never on how the feed was chunked,
//      how chunks straddle expiry boundaries, or how many producers fed.
//      Every lane must equal a pointwise reference sampler fed the same
//      substream in one call, field-for-field across all levels,
//      reservoirs included. This holds at every rate (split cascades
//      through the arena-internal PromoteInto are deterministic).
//
//   2. One-lane == pointwise: a single-lane pool is the pointwise
//      RobustL0SamplerSW, so any chunking must reproduce the pointwise
//      sampler bit-for-bit, query draws included.
//
//   3. Merged window view at rate 1: every merged item is the true latest
//      window point of a live group of the union stream (checked against
//      the exact windowed partition baseline), at most one item per
//      group, the newest arrival's group is always covered, and the
//      merged vector is invariant under re-chunking.
//
// Plus the refactor pin: the flat-index sampler (core/sw_group_table.h,
// PromoteInto) against the node-based LegacySwSampler, and the exact
// window-tracking guarantee of Algorithm 2 at rate 1.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "rl0/baseline/exact_partition.h"
#include "rl0/baseline/legacy_sw_sampler.h"
#include "rl0/core/dup_filter.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/core/snapshot.h"
#include "rl0/core/worker_fleet.h"
#include "rl0/core/sw_fixed_sampler.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

SamplerOptions BaseOptions(uint64_t seed) {
  SamplerOptions opts;
  opts.dim = 1;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.expected_stream_length = 1 << 14;
  return opts;
}

/// A revisit stream with genuine expiry: `groups` centers 10 apart; after
/// `die_off · n` points only the upper half of the groups keeps arriving,
/// so the lower half expires out of any window ending near the stream's
/// end. Stamps are the stream indices.
std::vector<Point> RevisitStream(size_t n, size_t groups, uint64_t seed,
                                 double die_off = 0.5) {
  std::vector<Point> points;
  points.reserve(n);
  Xoshiro256pp rng(SplitMix64(seed));
  const size_t cutoff = static_cast<size_t>(die_off * static_cast<double>(n));
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i < cutoff ? 0 : groups / 2;
    const size_t g = lo + static_cast<size_t>(rng.NextBounded(groups - lo));
    points.push_back(
        Point{10.0 * static_cast<double>(g) + 0.3 * (rng.NextDouble() - 0.5)});
  }
  return points;
}

bool SameRecord(const GroupRecord& a, const GroupRecord& b) {
  if (a.id != b.id || a.rep_index != b.rep_index ||
      a.rep_cell != b.rep_cell || a.accepted != b.accepted ||
      a.latest_stamp != b.latest_stamp || a.latest_index != b.latest_index) {
    return false;
  }
  if (a.rep != b.rep || a.latest != b.latest) return false;
  if (a.reservoir.size() != b.reservoir.size()) return false;
  for (size_t i = 0; i < a.reservoir.size(); ++i) {
    const auto& ca = a.reservoir[i];
    const auto& cb = b.reservoir[i];
    if (ca.priority != cb.priority || ca.stamp != cb.stamp ||
        ca.stream_index != cb.stream_index || ca.point != cb.point) {
      return false;
    }
  }
  return true;
}

/// Per-level group records sorted by id (canonical: storage order is an
/// implementation detail of both layouts).
template <typename Sampler>
std::vector<std::vector<GroupRecord>> LevelSnapshots(const Sampler& s) {
  std::vector<std::vector<GroupRecord>> out(s.num_levels());
  for (size_t l = 0; l < s.num_levels(); ++l) {
    s.level(l).SnapshotGroups(&out[l]);
    std::sort(out[l].begin(), out[l].end(),
              [](const GroupRecord& a, const GroupRecord& b) {
                return a.id < b.id;
              });
  }
  return out;
}

template <typename SamplerA, typename SamplerB>
void ExpectSameLevelState(const SamplerA& a, const SamplerB& b) {
  ASSERT_EQ(a.num_levels(), b.num_levels());
  const auto snap_a = LevelSnapshots(a);
  const auto snap_b = LevelSnapshots(b);
  for (size_t l = 0; l < snap_a.size(); ++l) {
    SCOPED_TRACE("level " + std::to_string(l));
    ASSERT_EQ(snap_a[l].size(), snap_b[l].size());
    for (size_t i = 0; i < snap_a[l].size(); ++i) {
      EXPECT_TRUE(SameRecord(snap_a[l][i], snap_b[l][i]))
          << "group " << i << " (id " << snap_a[l][i].id << " vs "
          << snap_b[l][i].id << ") differs";
    }
  }
}

/// Feeds `points` in randomized chunk sizes (deterministic per seed);
/// optionally drains after every chunk.
void FeedRandomChunks(ShardedSwSamplerPool* pool, Span<const Point> points,
                      uint64_t chunk_seed, size_t max_chunk,
                      bool drain_between = false) {
  Xoshiro256pp rng(chunk_seed);
  size_t offset = 0;
  while (offset < points.size()) {
    const size_t chunk = 1 + static_cast<size_t>(rng.NextBounded(max_chunk));
    pool->Feed(points.subspan(offset, chunk));
    offset += chunk;
    if (drain_between) pool->Drain();
  }
  pool->Drain();
}

TEST(SwPipelineDeterminismTest, OneLaneMatchesPointwiseAcrossChunkings) {
  const std::vector<Point> points = RevisitStream(3000, 120, 41);
  const int64_t window = 257;
  const SamplerOptions opts = BaseOptions(901);  // natural cap: splits run

  auto pointwise = RobustL0SamplerSW::Create(opts, window).value();
  for (const Point& p : points) pointwise.Insert(p);

  struct Chunking {
    uint64_t seed;
    size_t max_chunk;
    bool drain_between;
  };
  // max_chunk 1024 >> window: single chunks straddle several expiry
  // horizons; max_chunk 7: expiry boundaries straddle many chunks.
  for (const Chunking c : {Chunking{11, 7, false}, Chunking{12, 97, true},
                           Chunking{13, 1024, false}}) {
    SCOPED_TRACE(c.seed);
    auto pool = ShardedSwSamplerPool::Create(opts, window, 1).value();
    FeedRandomChunks(&pool, points, c.seed, c.max_chunk, c.drain_between);
    EXPECT_EQ(pool.points_processed(), points.size());
    EXPECT_EQ(pool.now(), static_cast<int64_t>(points.size()) - 1);
    ExpectSameLevelState(pool.shard(0), pointwise);
    EXPECT_EQ(pool.SpaceWords(), pointwise.SpaceWords());

    // Query parity: same state, same query randomness, same draw.
    Xoshiro256pp rng_pool(777), rng_ref(777);
    const auto from_pool = pool.SampleLatest(&rng_pool);
    const auto from_ref = pointwise.SampleLatest(&rng_ref);
    ASSERT_EQ(from_pool.has_value(), from_ref.has_value());
    if (from_pool.has_value()) {
      EXPECT_EQ(from_pool->stream_index, from_ref->stream_index);
      EXPECT_EQ(from_pool->point, from_ref->point);
    }
  }
}

TEST(SwPipelineDeterminismTest, PerLaneStateInvariantUnderRechunking) {
  const std::vector<Point> points = RevisitStream(3000, 120, 42);
  const int64_t window = 311;
  const SamplerOptions opts = BaseOptions(902);  // natural cap

  for (const size_t lanes : {2, 8}) {
    SCOPED_TRACE(lanes);
    // Reference per lane: the strided substream in one pointwise call.
    std::vector<RobustL0SamplerSW> refs;
    for (size_t s = 0; s < lanes; ++s) {
      refs.push_back(RobustL0SamplerSW::Create(opts, window).value());
      refs.back().InsertStrided(points, s, lanes, 0);
    }

    auto tiny = ShardedSwSamplerPool::Create(opts, window, lanes).value();
    FeedRandomChunks(&tiny, points, 21, /*max_chunk=*/13);
    auto big = ShardedSwSamplerPool::Create(opts, window, lanes).value();
    FeedRandomChunks(&big, points, 22, /*max_chunk=*/900,
                     /*drain_between=*/true);

    for (size_t s = 0; s < lanes; ++s) {
      SCOPED_TRACE(s);
      EXPECT_EQ(tiny.shard(s).points_processed(),
                refs[s].points_processed());
      ExpectSameLevelState(tiny.shard(s), refs[s]);
      ExpectSameLevelState(big.shard(s), refs[s]);
    }
  }
}

TEST(SwPipelineDeterminismTest, MergedWindowItemsExactAndRechunkInvariant) {
  const std::vector<Point> points = RevisitStream(4000, 100, 43);
  const int64_t window = 701;
  SamplerOptions opts = BaseOptions(903);
  opts.accept_cap = 1 << 20;  // rate 1: no cascades anywhere
  const int64_t now = static_cast<int64_t>(points.size()) - 1;
  const WindowedGroupTruth truth =
      ExactWindowGroups(points, opts.alpha, window, now);
  ASSERT_GT(truth.live_groups.size(), 0u);
  ASSERT_LT(truth.live_groups.size(), truth.num_groups);  // some expired

  auto pointwise = RobustL0SamplerSW::Create(opts, window).value();
  for (const Point& p : points) pointwise.Insert(p);

  for (const size_t lanes : {1, 2, 8}) {
    SCOPED_TRACE(lanes);
    auto pool = ShardedSwSamplerPool::Create(opts, window, lanes).value();
    FeedRandomChunks(&pool, points, 31, /*max_chunk=*/257);
    std::vector<SampleItem> merged = pool.MergedWindowItems(now);
    ASSERT_FALSE(merged.empty());

    std::set<uint32_t> reported;
    for (const SampleItem& item : merged) {
      // Every reported item is a genuine window point, bit-for-bit.
      ASSERT_LT(item.stream_index, points.size());
      const int64_t stamp = static_cast<int64_t>(item.stream_index);
      EXPECT_GT(stamp, now - window);
      EXPECT_EQ(item.point, points[item.stream_index]);
      // ... of a live group, at most one report per group. A lane
      // reports its *sub-view's* latest point of the group, which can
      // trail the union's latest when the lane owning the newest point
      // no longer tracks the group (Algorithm 3's lower-level pruning);
      // with one lane the view is the union and the latest is exact.
      const uint32_t group = truth.group_of[item.stream_index];
      EXPECT_TRUE(truth.IsLive(group));
      EXPECT_TRUE(reported.insert(group).second)
          << "group " << group << " reported twice";
      EXPECT_LE(item.stream_index, truth.latest_in_window[group]);
      if (lanes == 1) {
        EXPECT_EQ(item.stream_index, truth.latest_in_window[group]);
      }
    }
    // Lemma 2.10: the newest arrival's group is always tracked — by the
    // lane that owns the newest point, at that point — so the merged
    // latest-wins view reports it with the exact union latest.
    const uint32_t newest_group = truth.group_of[points.size() - 1];
    ASSERT_TRUE(reported.count(newest_group));
    for (const SampleItem& item : merged) {
      if (truth.group_of[item.stream_index] == newest_group) {
        EXPECT_EQ(item.stream_index, points.size() - 1);
      }
    }

    // Invariance under re-chunking (order included).
    auto pool2 = ShardedSwSamplerPool::Create(opts, window, lanes).value();
    FeedRandomChunks(&pool2, points, 32, /*max_chunk=*/19,
                     /*drain_between=*/true);
    const std::vector<SampleItem> merged2 = pool2.MergedWindowItems(now);
    ASSERT_EQ(merged2.size(), merged.size());
    for (size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged2[i].stream_index, merged[i].stream_index);
      EXPECT_EQ(merged2[i].point, merged[i].point);
    }

    // One lane is the pointwise sampler: the merged view must equal the
    // pointwise accepted-group union exactly.
    if (lanes == 1) {
      std::vector<SampleItem> reference;
      pointwise.AcceptedWindowItems(now, &reference);
      ASSERT_EQ(merged.size(), reference.size());
      for (size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i].stream_index, reference[i].stream_index);
        EXPECT_EQ(merged[i].point, reference[i].point);
      }
    }
  }
}

/// Non-decreasing stamps with jitter gaps in {1..5} and, every
/// `burst_every` points, a jump past `burst` whole stamp units (set
/// burst > window to expire entire windows at once).
std::vector<int64_t> JitterStamps(size_t n, uint64_t seed,
                                  size_t burst_every, int64_t burst) {
  std::vector<int64_t> stamps;
  stamps.reserve(n);
  Xoshiro256pp rng(SplitMix64(seed ^ 0x5354414DULL));
  int64_t t = 0;
  for (size_t i = 0; i < n; ++i) {
    if (burst_every != 0 && i != 0 && i % burst_every == 0) {
      t += burst;
    } else {
      t += 1 + static_cast<int64_t>(rng.NextBounded(5));
    }
    stamps.push_back(t);
  }
  return stamps;
}

/// Feeds a stamped stream in randomized chunk sizes (deterministic per
/// seed), alternating the copy and the owned feed variants.
void FeedRandomChunksStamped(ShardedSwSamplerPool* pool,
                             Span<const Point> points,
                             Span<const int64_t> stamps, uint64_t chunk_seed,
                             size_t max_chunk, bool drain_between = false) {
  Xoshiro256pp rng(chunk_seed);
  size_t offset = 0;
  bool owned = false;
  while (offset < points.size()) {
    const size_t chunk = 1 + static_cast<size_t>(rng.NextBounded(max_chunk));
    const Span<const Point> p = points.subspan(offset, chunk);
    const Span<const int64_t> s = stamps.subspan(offset, chunk);
    if (owned) {
      pool->FeedOwnedStamped(std::vector<Point>(p.begin(), p.end()),
                             std::vector<int64_t>(s.begin(), s.end()));
    } else {
      pool->FeedStamped(p, s);
    }
    owned = !owned;
    offset += chunk;
    if (drain_between) pool->Drain();
  }
  pool->Drain();
}

TEST(SwPipelineDeterminismTest, TimeStampedOneLaneMatchesPointwise) {
  // The time-based pipeline's core contract: a one-lane pool fed stamped
  // chunks of any size — including chunks straddling stamp bursts that
  // expire whole windows — reproduces the pointwise explicit-stamp
  // sampler bit-for-bit, query draws included.
  const std::vector<Point> points = RevisitStream(3000, 120, 46);
  const int64_t window = 257;
  // Bursts of 3 windows every 500 points: whole windows expire inside a
  // single chunk.
  const std::vector<int64_t> stamps =
      JitterStamps(points.size(), 77, 500, 3 * window);
  const SamplerOptions opts = BaseOptions(906);  // natural cap: splits run

  auto pointwise = RobustL0SamplerSW::Create(opts, window).value();
  for (size_t i = 0; i < points.size(); ++i) {
    pointwise.Insert(points[i], stamps[i]);
  }

  struct Chunking {
    uint64_t seed;
    size_t max_chunk;
    bool drain_between;
  };
  for (const Chunking c : {Chunking{14, 7, false}, Chunking{15, 97, true},
                           Chunking{16, 1024, false}}) {
    SCOPED_TRACE(c.seed);
    auto pool = ShardedSwSamplerPool::Create(opts, window, 1).value();
    FeedRandomChunksStamped(&pool, points, stamps, c.seed, c.max_chunk,
                            c.drain_between);
    EXPECT_EQ(pool.points_processed(), points.size());
    EXPECT_EQ(pool.now(), stamps.back());  // time mode: now = last stamp
    ExpectSameLevelState(pool.shard(0), pointwise);
    EXPECT_EQ(pool.SpaceWords(), pointwise.SpaceWords());

    Xoshiro256pp rng_pool(778), rng_ref(778);
    const auto from_pool = pool.SampleLatest(&rng_pool);
    const auto from_ref = pointwise.SampleLatest(&rng_ref);
    ASSERT_EQ(from_pool.has_value(), from_ref.has_value());
    if (from_pool.has_value()) {
      EXPECT_EQ(from_pool->stream_index, from_ref->stream_index);
      EXPECT_EQ(from_pool->point, from_ref->point);
    }
  }
}

TEST(SwPipelineDeterminismTest, TimeStampedPerLaneInvariantUnderRechunking) {
  // Lane s of a stamped pool consumes the global residue class s (mod S)
  // with its explicit stamps; its state must equal a pointwise reference
  // fed the same stamped substream in one call, for any chunking.
  const std::vector<Point> points = RevisitStream(3000, 120, 47);
  const int64_t window = 311;
  const std::vector<int64_t> stamps =
      JitterStamps(points.size(), 78, 650, 2 * window + 11);
  const SamplerOptions opts = BaseOptions(907);  // natural cap

  for (const size_t lanes : {2, 8}) {
    SCOPED_TRACE(lanes);
    std::vector<RobustL0SamplerSW> refs;
    for (size_t s = 0; s < lanes; ++s) {
      refs.push_back(RobustL0SamplerSW::Create(opts, window).value());
      refs.back().InsertStridedStamped(points, stamps, s, lanes, 0);
    }

    auto tiny = ShardedSwSamplerPool::Create(opts, window, lanes).value();
    FeedRandomChunksStamped(&tiny, points, stamps, 23, /*max_chunk=*/13);
    auto big = ShardedSwSamplerPool::Create(opts, window, lanes).value();
    FeedRandomChunksStamped(&big, points, stamps, 24, /*max_chunk=*/900,
                            /*drain_between=*/true);

    for (size_t s = 0; s < lanes; ++s) {
      SCOPED_TRACE(s);
      EXPECT_EQ(tiny.shard(s).points_processed(),
                refs[s].points_processed());
      EXPECT_EQ(tiny.shard(s).latest_stamp(), refs[s].latest_stamp());
      ExpectSameLevelState(tiny.shard(s), refs[s]);
      ExpectSameLevelState(big.shard(s), refs[s]);
    }
  }
}

TEST(SwPipelineDeterminismTest, TimeStampedMergedViewNeverReportsExpired) {
  // Merged-query window semantics in time mode: no reported item's stamp
  // may have left the window, at any lane count, and the merged view is
  // invariant under re-chunking of the stamped feed.
  const std::vector<Point> points = RevisitStream(4000, 100, 48);
  const int64_t window = 701;
  const std::vector<int64_t> stamps =
      JitterStamps(points.size(), 79, 900, 2 * window);
  SamplerOptions opts = BaseOptions(908);
  opts.accept_cap = 1 << 20;  // rate 1
  const int64_t now = stamps.back();

  for (const size_t lanes : {1, 2, 8}) {
    SCOPED_TRACE(lanes);
    auto pool = ShardedSwSamplerPool::Create(opts, window, lanes).value();
    FeedRandomChunksStamped(&pool, points, stamps, 33, /*max_chunk=*/257);
    const std::vector<SampleItem> merged = pool.MergedWindowItems(now);
    ASSERT_FALSE(merged.empty());
    for (const SampleItem& item : merged) {
      ASSERT_LT(item.stream_index, points.size());
      EXPECT_GT(stamps[item.stream_index], now - window);
      EXPECT_LE(stamps[item.stream_index], now);
      EXPECT_EQ(item.point, points[item.stream_index]);
    }

    auto pool2 = ShardedSwSamplerPool::Create(opts, window, lanes).value();
    FeedRandomChunksStamped(&pool2, points, stamps, 34, /*max_chunk=*/19,
                            /*drain_between=*/true);
    const std::vector<SampleItem> merged2 = pool2.MergedWindowItems(now);
    ASSERT_EQ(merged2.size(), merged.size());
    for (size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged2[i].stream_index, merged[i].stream_index);
    }
  }
}

TEST(SwPipelineDeterminismTest, UnifiedQueryPoolDedupesAndPassesThrough) {
  // The cross-shard query-pool fixes of this PR: (a) one lane consumes
  // no extra randomness and reproduces the pointwise WindowQueryPool
  // bit-for-bit; (b) with several lanes the merged pool holds at most
  // one entry per underlying group (α-proximity dedupe) and every entry
  // is a live window member; (c) the pool is invariant under re-chunking
  // for identical query randomness.
  const std::vector<Point> points = RevisitStream(3000, 120, 49);
  const int64_t window = 401;
  const SamplerOptions opts = BaseOptions(909);  // natural cap: deep levels
  const int64_t now = static_cast<int64_t>(points.size()) - 1;
  const WindowedGroupTruth truth =
      ExactWindowGroups(points, opts.alpha, window, now);

  auto pointwise = RobustL0SamplerSW::Create(opts, window).value();
  for (const Point& p : points) pointwise.Insert(p);

  for (const size_t lanes : {1, 2, 8}) {
    SCOPED_TRACE(lanes);
    auto pool = ShardedSwSamplerPool::Create(opts, window, lanes).value();
    FeedRandomChunks(&pool, points, 35, /*max_chunk=*/300);

    Xoshiro256pp rng_a(4242);
    const std::vector<SampleItem> unified = pool.UnifiedQueryPool(now, &rng_a);
    ASSERT_FALSE(unified.empty());
    std::set<uint32_t> groups;
    for (const SampleItem& item : unified) {
      ASSERT_LT(item.stream_index, points.size());
      const uint32_t group = truth.group_of[item.stream_index];
      EXPECT_TRUE(truth.IsLive(group));
      EXPECT_TRUE(groups.insert(group).second)
          << "group " << group << " entered the unified pool twice";
    }

    if (lanes == 1) {
      Xoshiro256pp rng_b(4242);
      const std::vector<SampleItem> reference =
          pointwise.WindowQueryPool(now, &rng_b);
      ASSERT_EQ(unified.size(), reference.size());
      for (size_t i = 0; i < unified.size(); ++i) {
        EXPECT_EQ(unified[i].stream_index, reference[i].stream_index);
      }
      // ... and the draw after the pool build stays in lockstep too.
      EXPECT_EQ(rng_a(), rng_b());
    }

    // Re-chunk invariance with identical query randomness.
    auto pool2 = ShardedSwSamplerPool::Create(opts, window, lanes).value();
    FeedRandomChunks(&pool2, points, 36, /*max_chunk=*/23,
                     /*drain_between=*/true);
    Xoshiro256pp rng_c(4242);
    const std::vector<SampleItem> unified2 =
        pool2.UnifiedQueryPool(now, &rng_c);
    ASSERT_EQ(unified2.size(), unified.size());
    for (size_t i = 0; i < unified.size(); ++i) {
      EXPECT_EQ(unified2[i].stream_index, unified[i].stream_index);
    }
  }
}

TEST(SwPipelineDeterminismTest, AdaptiveFeedMatchesPointwise) {
  // FeedAdaptive's chunk sizes depend on live queue depths (timing), so
  // this pin is exactly the determinism contract: whatever chunking the
  // policy produces, the one-lane pool equals the pointwise sampler.
  const std::vector<Point> points = RevisitStream(2000, 80, 50);
  const int64_t window = 199;
  const SamplerOptions opts = BaseOptions(910);

  auto pointwise = RobustL0SamplerSW::Create(opts, window).value();
  for (const Point& p : points) pointwise.Insert(p);

  auto pool = ShardedSwSamplerPool::Create(opts, window, 1).value();
  AdaptiveChunkOptions chunk_opts;
  chunk_opts.min_chunk = 16;
  chunk_opts.initial_chunk = 64;
  pool.chunk_policy() = AdaptiveChunkPolicy(chunk_opts);
  pool.FeedAdaptive(points);
  pool.Drain();
  EXPECT_EQ(pool.points_processed(), points.size());
  ExpectSameLevelState(pool.shard(0), pointwise);
}

TEST(SwPipelineDeterminismTest, LegacyDifferentialPinsTheRefactor) {
  const std::vector<Point> points = RevisitStream(2500, 90, 44);
  const int64_t window = 199;

  struct Config {
    const char* name;
    size_t accept_cap;  // 0 = natural cap
    bool reservoir;
  };
  // Reservoir mode is pinned at rate 1 (no splits): across splits the
  // refactored hierarchy intentionally preserves reservoir coin streams
  // (PromoteInto) where the legacy path reseeds — decisions still match,
  // reservoir priorities legitimately do not.
  for (const Config c : {Config{"rate1", 1 << 20, false},
                         Config{"rate1+reservoir", 1 << 20, true},
                         Config{"natural-cap", 0, false}}) {
    SCOPED_TRACE(c.name);
    SamplerOptions opts = BaseOptions(904);
    opts.accept_cap = c.accept_cap;
    opts.random_representative = c.reservoir;

    auto flat = RobustL0SamplerSW::Create(opts, window).value();
    auto legacy = LegacySwSampler::Create(opts, window).value();
    for (const Point& p : points) {
      flat.Insert(p);
      legacy.Insert(p);
    }
    EXPECT_EQ(flat.error_count(), legacy.error_count());
    EXPECT_EQ(flat.stuck_split_count(), legacy.stuck_split_count());
    EXPECT_EQ(flat.SpaceWords(), legacy.SpaceWords());
    ExpectSameLevelState(flat, legacy);
  }
}

TEST(SwPipelineDeterminismTest, DupFilterOnOffBitIdentical) {
  // The duplicate-suppression front-end on the hierarchy: a recorded
  // descent replay must take exactly the path the full probe would have
  // — same touches, same reservoir coins, same Resets and expiry — so
  // filter-on and filter-off runs stay bit-identical field-for-field
  // across all levels, through splits, cascades and expiry waves.
  Xoshiro256pp rng(SplitMix64(4242));
  std::vector<Point> points;
  std::vector<int64_t> stamps;
  int64_t stamp = 0;
  const size_t groups = 60;
  for (size_t i = 0; i < 4000; ++i) {
    const size_t g = rng.NextBounded(groups);
    Point p{10.0 * static_cast<double>(g)};
    // 85% exact byte repeats (the front-end's hit case), the rest fresh
    // near-duplicates that miss and re-arm the cache.
    if (rng.NextDouble() >= 0.85) p[0] += 0.3 * (rng.NextDouble() - 0.5);
    points.push_back(p);
    // Mostly dense stamps, occasionally a jump past whole windows (big
    // expiry waves, which also trigger group-table compaction).
    stamp += rng.NextBounded(60) == 0
                 ? static_cast<int64_t>(rng.NextBounded(600))
                 : static_cast<int64_t>(rng.NextBounded(3));
    stamps.push_back(stamp);
  }

  SamplerOptions opts = BaseOptions(911);  // natural cap: splits run
  opts.random_representative = true;       // coin-stream identity too
  SamplerOptions off_opts = opts;
  off_opts.dup_filter = false;
  const int64_t window = 257;
  auto on = RobustL0SamplerSW::Create(opts, window).value();
  auto off = RobustL0SamplerSW::Create(off_opts, window).value();
  for (size_t i = 0; i < points.size(); ++i) {
    on.Insert(points[i], stamps[i]);
    off.Insert(points[i], stamps[i]);
    if (i % 499 == 0) ExpectSameLevelState(on, off);
  }
  ExpectSameLevelState(on, off);
  EXPECT_EQ(on.error_count(), off.error_count());
  EXPECT_EQ(on.stuck_split_count(), off.stuck_split_count());

  // Identical external query RNGs must draw identical samples.
  Xoshiro256pp rng_on(77), rng_off(77);
  for (int q = 0; q < 10; ++q) {
    const auto sample_on = on.SampleLatest(&rng_on);
    const auto sample_off = off.SampleLatest(&rng_off);
    ASSERT_EQ(sample_on.has_value(), sample_off.has_value());
    if (sample_on.has_value()) {
      EXPECT_EQ(sample_on->point, sample_off->point);
      EXPECT_EQ(sample_on->stream_index, sample_off->stream_index);
    }
  }

  // The filter is scratch state: snapshots must be byte-identical.
  std::string bytes_on, bytes_off;
  ASSERT_TRUE(SnapshotSamplerSW(on, &bytes_on).ok());
  ASSERT_TRUE(SnapshotSamplerSW(off, &bytes_off).ok());
  EXPECT_EQ(bytes_on, bytes_off);

  if (DupFilter::kCompiledIn) {
    EXPECT_GT(on.filter_stats().hits, 0u);
  }
  EXPECT_EQ(off.filter_stats().hits, 0u);
}

TEST(SwPipelineDeterminismTest, DupFilterOnOffBitIdenticalSharded) {
  // Per-lane filters through the windowed pipeline: chunked feeding with
  // different chunkings on the on/off pools, lane state compared
  // field-for-field.
  Xoshiro256pp rng(SplitMix64(4343));
  std::vector<Point> points;
  const size_t groups = 50;
  for (size_t i = 0; i < 3000; ++i) {
    const size_t g = rng.NextBounded(groups);
    Point p{10.0 * static_cast<double>(g)};
    if (rng.NextDouble() >= 0.8) p[0] += 0.3 * (rng.NextDouble() - 0.5);
    points.push_back(p);
  }
  SamplerOptions opts = BaseOptions(912);
  SamplerOptions off_opts = opts;
  off_opts.dup_filter = false;
  const int64_t window = 513;
  const size_t lanes = 3;

  auto pool_on = ShardedSwSamplerPool::Create(opts, window, lanes).value();
  auto pool_off =
      ShardedSwSamplerPool::Create(off_opts, window, lanes).value();
  FeedRandomChunks(&pool_on, points, 661, /*max_chunk=*/97);
  FeedRandomChunks(&pool_off, points, 662, /*max_chunk=*/41);

  for (size_t s = 0; s < lanes; ++s) {
    SCOPED_TRACE("lane " + std::to_string(s));
    ExpectSameLevelState(pool_on.shard(s), pool_off.shard(s));
  }
  if (DupFilter::kCompiledIn) {
    EXPECT_GT(pool_on.FilterStats().hits, 0u);
  }
  EXPECT_EQ(pool_off.FilterStats().hits, 0u);
}

TEST(SwPipelineDeterminismTest, FixedRateLevelZeroTracksExactWindowGroups) {
  // Algorithm 2 at level 0 (rate 1) tracks *exactly* the live window
  // groups, each with its true latest point — the crisp rate-1 window
  // contract the flat group table must preserve, checked against the
  // exact windowed partition baseline at several cut points.
  const std::vector<Point> points = RevisitStream(1500, 60, 45);
  const int64_t window = 167;
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(905), 0, window)
          .value();
  size_t next = 0;
  for (const int64_t cut : {400, 900, 1499}) {
    for (; next <= static_cast<size_t>(cut); ++next) {
      sampler->Insert(points[next], static_cast<int64_t>(next));
    }
    const WindowedGroupTruth truth =
        ExactWindowGroups(points, 1.0, window, cut);
    std::vector<GroupRecord> groups;
    sampler->SnapshotGroups(&groups);
    std::set<std::pair<uint32_t, uint64_t>> tracked;
    for (const GroupRecord& g : groups) {
      EXPECT_TRUE(g.accepted);  // level 0 samples every cell
      tracked.insert({truth.group_of[g.latest_index], g.latest_index});
    }
    std::set<std::pair<uint32_t, uint64_t>> expected;
    for (uint32_t g : truth.live_groups) {
      expected.insert({g, truth.latest_in_window[g]});
    }
    EXPECT_EQ(tracked, expected) << "at cut " << cut;
  }
}

TEST(SwPipelineDeterminismTest, FleetModeBitIdenticalToDedicatedThreads) {
  // Lanes serviced by a shared WorkerFleet (the rl0_serve hosting mode)
  // must be observationally identical to dedicated per-lane threads:
  // which thread runs a lane's callback can never reach sampler state.
  // Two pools share one 2-thread fleet while a third runs dedicated
  // threads; same stream, different chunkings — per-shard level state,
  // snapshot bytes and query draws must all match.
  const auto points = RevisitStream(6000, 40, 404);
  SamplerOptions opts = BaseOptions(21);
  const int64_t window = 900;
  const size_t shards = 3;

  WorkerFleet fleet(2);
  IngestPool::Options fleet_pipe;
  fleet_pipe.fleet = &fleet;

  auto fleet_a =
      ShardedSwSamplerPool::Create(opts, window, shards, fleet_pipe);
  auto fleet_b =
      ShardedSwSamplerPool::Create(opts, window, shards, fleet_pipe);
  auto dedicated = ShardedSwSamplerPool::Create(opts, window, shards);
  ASSERT_TRUE(fleet_a.ok());
  ASSERT_TRUE(fleet_b.ok());
  ASSERT_TRUE(dedicated.ok());

  Span<const Point> span(points.data(), points.size());
  FeedRandomChunks(&fleet_a.value(), span, /*chunk_seed=*/7,
                   /*max_chunk=*/512);
  FeedRandomChunks(&fleet_b.value(), span, /*chunk_seed=*/1234,
                   /*max_chunk=*/63, /*drain_between=*/true);
  FeedRandomChunks(&dedicated.value(), span, /*chunk_seed=*/99,
                   /*max_chunk=*/2048);

  for (size_t s = 0; s < shards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    ExpectSameLevelState(fleet_a.value().shard(s),
                         dedicated.value().shard(s));
    ExpectSameLevelState(fleet_b.value().shard(s),
                         dedicated.value().shard(s));
    std::string fleet_bytes, dedicated_bytes;
    ASSERT_TRUE(
        SnapshotSamplerSW(fleet_a.value().shard(s), &fleet_bytes).ok());
    ASSERT_TRUE(
        SnapshotSamplerSW(dedicated.value().shard(s), &dedicated_bytes)
            .ok());
    EXPECT_EQ(fleet_bytes, dedicated_bytes);
  }

  Xoshiro256pp rng_fleet(5), rng_dedicated(5);
  for (int q = 0; q < 8; ++q) {
    const auto a = fleet_a.value().SampleLatest(&rng_fleet);
    const auto b = dedicated.value().SampleLatest(&rng_dedicated);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a.has_value()) {
      EXPECT_EQ(a->point, b->point);
      EXPECT_EQ(a->stream_index, b->stream_index);
    }
  }
}

}  // namespace
}  // namespace rl0
