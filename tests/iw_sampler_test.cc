// Tests for RobustL0SamplerIW (paper Algorithm 1): structural invariants,
// the rate-halving refilter (Definition 2.2), uniformity over groups,
// k-sampling, the reservoir variant, and the representatives-only replay
// equivalence used by the benchmark harness.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "rl0/baseline/exact_partition.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/metrics/distribution.h"
#include "rl0/stream/dataset.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace rl0 {
namespace {

SamplerOptions BaseOptions(size_t dim, double alpha, uint64_t seed) {
  SamplerOptions opts;
  opts.dim = dim;
  opts.alpha = alpha;
  opts.seed = seed;
  opts.expected_stream_length = 1 << 16;
  return opts;
}

/// A small well-separated 2-d dataset: `groups` clusters on a coarse
/// lattice, `per_group` points each within alpha/2 of the center.
NoisyDataset SmallClusters(size_t groups, size_t per_group, double alpha,
                           uint64_t seed) {
  NoisyDataset out;
  out.name = "SmallClusters";
  out.dim = 2;
  out.alpha = alpha;
  out.beta = 4.0 * alpha;
  out.num_groups = groups;
  Xoshiro256pp rng(seed);
  const size_t cols = static_cast<size_t>(std::ceil(std::sqrt(groups)));
  std::vector<Point> centers;
  for (size_t g = 0; g < groups; ++g) {
    centers.push_back(Point{static_cast<double>(g % cols) * 10.0 * alpha,
                            static_cast<double>(g / cols) * 10.0 * alpha});
  }
  for (size_t g = 0; g < groups; ++g) {
    for (size_t i = 0; i < per_group; ++i) {
      Point p = centers[g];
      p[0] += 0.25 * alpha * (rng.NextDouble() - 0.5);
      p[1] += 0.25 * alpha * (rng.NextDouble() - 0.5);
      out.points.push_back(p);
      out.group_of.push_back(static_cast<uint32_t>(g));
    }
  }
  // Shuffle.
  for (size_t i = out.points.size(); i > 1; --i) {
    const size_t j = rng.NextBounded(i);
    std::swap(out.points[i - 1], out.points[j]);
    std::swap(out.group_of[i - 1], out.group_of[j]);
  }
  return out;
}

TEST(IwSamplerTest, CreateValidatesOptions) {
  SamplerOptions bad;
  EXPECT_FALSE(RobustL0SamplerIW::Create(bad).ok());
  EXPECT_TRUE(RobustL0SamplerIW::Create(BaseOptions(2, 1.0, 1)).ok());
}

TEST(IwSamplerTest, EmptySamplerReturnsNullopt) {
  auto sampler = RobustL0SamplerIW::Create(BaseOptions(2, 1.0, 1)).value();
  Xoshiro256pp rng(9);
  EXPECT_FALSE(sampler.Sample(&rng).has_value());
}

TEST(IwSamplerTest, FirstPointAlwaysAccepted) {
  // R is initialized to 1, so the very first point enters Sacc certainly.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto sampler =
        RobustL0SamplerIW::Create(BaseOptions(2, 1.0, seed)).value();
    sampler.Insert(Point{0.0, 0.0});
    EXPECT_EQ(sampler.accept_size(), 1u);
    Xoshiro256pp rng(seed);
    const auto sample = sampler.Sample(&rng);
    ASSERT_TRUE(sample.has_value());
    EXPECT_EQ(sample->point, Point({0.0, 0.0}));
    EXPECT_EQ(sample->stream_index, 0u);
  }
}

TEST(IwSamplerTest, NearDuplicatesAreSkipped) {
  auto sampler = RobustL0SamplerIW::Create(BaseOptions(2, 1.0, 3)).value();
  sampler.Insert(Point{0.0, 0.0});
  sampler.Insert(Point{0.1, 0.1});
  sampler.Insert(Point{-0.2, 0.3});
  EXPECT_EQ(sampler.accept_size() + sampler.reject_size(), 1u);
  EXPECT_EQ(sampler.points_processed(), 3u);
}

TEST(IwSamplerTest, ExactAlphaDistanceIsSameGroup) {
  auto sampler = RobustL0SamplerIW::Create(BaseOptions(1, 1.0, 4)).value();
  sampler.Insert(Point{0.0});
  sampler.Insert(Point{1.0});  // d == alpha: near-duplicate (inclusive)
  EXPECT_EQ(sampler.accept_size() + sampler.reject_size(), 1u);
}

TEST(IwSamplerTest, FarPointsFormNewGroups) {
  auto sampler = RobustL0SamplerIW::Create(BaseOptions(1, 1.0, 5)).value();
  sampler.Insert(Point{0.0});
  sampler.Insert(Point{10.0});
  sampler.Insert(Point{20.0});
  // All three are distinct groups; with the default cap they are all
  // candidates at level 0 and hence all accepted.
  EXPECT_EQ(sampler.accept_size(), 3u);
}

TEST(IwSamplerTest, AcceptCapNeverExceededAndAcceptNeverEmpty) {
  SamplerOptions opts = BaseOptions(2, 1.0, 6);
  opts.accept_cap = 16;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  const NoisyDataset data = SmallClusters(400, 3, 1.0, 7);
  for (const Point& p : data.points) {
    sampler.Insert(p);
    EXPECT_LE(sampler.accept_size(), 16u);
    EXPECT_GE(sampler.accept_size(), 1u);
  }
  EXPECT_GT(sampler.level(), 0u);  // the cap must have forced doublings
}

TEST(IwSamplerTest, AcceptedRepsAreFirstPointsOfTheirGroups) {
  // Accepted representatives are always the true first point of their
  // group: a later point q can only be accepted if cell(q) is sampled,
  // but cell(q) ∈ adj(first point), so the first point would have been
  // stored (accepted or rejected) and q blocked. Rejected entries may
  // legitimately hold a non-first point when the group's first point was
  // ignored (no sampled cell near it) and a later point drifted within α
  // of a sampled cell — Srej is pure bookkeeping and is never sampled.
  SamplerOptions opts = BaseOptions(2, 1.0, 8);
  opts.accept_cap = 12;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  const NoisyDataset data = SmallClusters(120, 5, 1.0, 9);
  // Ground truth: first stream index per group.
  std::map<uint32_t, uint64_t> first_of_group;
  for (size_t i = 0; i < data.points.size(); ++i) {
    first_of_group.emplace(data.group_of[i], i);
  }
  for (const Point& p : data.points) sampler.Insert(p);
  const std::vector<SampleItem> accepted = sampler.AcceptedRepresentatives();
  ASSERT_FALSE(accepted.empty());
  for (const SampleItem& item : accepted) {
    const uint32_t g = data.group_of[item.stream_index];
    EXPECT_EQ(item.stream_index, first_of_group.at(g))
        << "accepted representative is not the first point of group " << g;
  }
  // At most one stored representative per group, accepted or rejected.
  std::set<uint32_t> seen;
  std::vector<SampleItem> stored = accepted;
  const std::vector<SampleItem> rejected = sampler.RejectedRepresentatives();
  stored.insert(stored.end(), rejected.begin(), rejected.end());
  for (const SampleItem& item : stored) {
    EXPECT_TRUE(seen.insert(data.group_of[item.stream_index]).second);
  }
}

TEST(IwSamplerTest, Definition22HoldsAfterDoubling) {
  // After any number of rate halvings: accepted ⇔ own cell sampled at the
  // current level; rejected ⇒ own cell unsampled but a cell within alpha
  // of the representative is sampled.
  SamplerOptions opts = BaseOptions(2, 1.0, 10);
  opts.accept_cap = 8;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  const NoisyDataset data = SmallClusters(300, 2, 1.0, 11);
  for (const Point& p : data.points) sampler.Insert(p);
  ASSERT_GT(sampler.level(), 0u);

  std::vector<uint64_t> adj;
  for (const SampleItem& item : sampler.AcceptedRepresentatives()) {
    EXPECT_TRUE(sampler.hasher().SampledAtLevel(
        sampler.grid().CellKeyOf(item.point), sampler.level()));
  }
  for (const SampleItem& item : sampler.RejectedRepresentatives()) {
    EXPECT_FALSE(sampler.hasher().SampledAtLevel(
        sampler.grid().CellKeyOf(item.point), sampler.level()));
    sampler.grid().AdjacentCells(item.point, opts.alpha, &adj);
    bool near = false;
    for (uint64_t key : adj) {
      near = near || sampler.hasher().SampledAtLevel(key, sampler.level());
    }
    EXPECT_TRUE(near);
  }
}

TEST(IwSamplerTest, RateMatchesGroupCountOrder) {
  // With n groups ≫ cap, R should settle near n/cap (within a constant).
  SamplerOptions opts = BaseOptions(2, 1.0, 12);
  opts.accept_cap = 16;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  const size_t n = 1024;
  const NoisyDataset data = SmallClusters(n, 1, 1.0, 13);
  for (const Point& p : data.points) sampler.Insert(p);
  const double r = static_cast<double>(sampler.rate_reciprocal());
  const double ideal = static_cast<double>(n) / 16.0;
  EXPECT_GE(r, ideal / 8.0);
  EXPECT_LE(r, ideal * 8.0);
}

TEST(IwSamplerTest, DeterministicGivenSeeds) {
  const NoisyDataset data = SmallClusters(50, 4, 1.0, 14);
  auto s1 = RobustL0SamplerIW::Create(BaseOptions(2, 1.0, 15)).value();
  auto s2 = RobustL0SamplerIW::Create(BaseOptions(2, 1.0, 15)).value();
  for (const Point& p : data.points) {
    s1.Insert(p);
    s2.Insert(p);
  }
  EXPECT_EQ(s1.accept_size(), s2.accept_size());
  EXPECT_EQ(s1.level(), s2.level());
  const auto a = s1.Sample(uint64_t{77});
  const auto b = s2.Sample(uint64_t{77});
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->stream_index, b->stream_index);
}

TEST(IwSamplerTest, ReplayEquivalence) {
  // Feeding only the first point of each group (in order) yields exactly
  // the same accept/reject state as feeding the full stream — the
  // optimization the distribution benchmarks rely on (DESIGN.md §3).
  const NoisyDataset data = SmallClusters(150, 6, 1.0, 16);
  const RepresentativeStream reps = ExtractRepresentatives(data);

  SamplerOptions opts = BaseOptions(2, 1.0, 17);
  opts.accept_cap = 12;
  auto full = RobustL0SamplerIW::Create(opts).value();
  auto replay = RobustL0SamplerIW::Create(opts).value();
  for (const Point& p : data.points) full.Insert(p);
  for (const Point& p : reps.points) replay.Insert(p);

  EXPECT_EQ(full.level(), replay.level());
  EXPECT_EQ(full.accept_size(), replay.accept_size());
  const auto points_of = [](const std::vector<SampleItem>& v) {
    std::vector<std::vector<double>> out;
    for (const auto& item : v) out.push_back(item.point.coords());
    std::sort(out.begin(), out.end());
    return out;
  };
  // The accept sets — what sampling draws from — must match exactly.
  EXPECT_EQ(points_of(full.AcceptedRepresentatives()),
            points_of(replay.AcceptedRepresentatives()));
  // The full stream may store extra *rejected* bookkeeping entries (later
  // points of ignored groups near sampled cells); every replay rejected
  // entry must appear in the full run, not vice versa.
  const auto full_rej = points_of(full.RejectedRepresentatives());
  for (const auto& coords : points_of(replay.RejectedRepresentatives())) {
    EXPECT_TRUE(std::binary_search(full_rej.begin(), full_rej.end(), coords));
  }
}

TEST(IwSamplerTest, UniformityAcrossGroups) {
  // 40 groups, 20000 independent sampler instances (fresh hash seeds):
  // each group should be sampled ~500 times. The noise floor for
  // stdDevNm at this run count is sqrt(39/20000) ≈ 0.044. The algorithm
  // is allowed to fail (empty accept set) with small probability after a
  // rate halving; such runs are counted and must stay rare.
  const size_t groups = 40;
  const NoisyDataset data = SmallClusters(groups, 3, 1.0, 18);
  const RepresentativeStream reps = ExtractRepresentatives(data);
  SampleDistribution dist(groups);
  const int runs = 20000;
  int empty_runs = 0;
  for (int run = 0; run < runs; ++run) {
    SamplerOptions opts = BaseOptions(2, 1.0, 1000 + run);
    opts.accept_cap = 12;
    auto sampler = RobustL0SamplerIW::Create(opts).value();
    for (const Point& p : reps.points) sampler.Insert(p);
    Xoshiro256pp rng(500000 + run);
    const auto sample = sampler.Sample(&rng);
    if (!sample.has_value()) {
      ++empty_runs;
      continue;
    }
    dist.Record(reps.group_of[sample->stream_index]);
  }
  EXPECT_LT(empty_runs, runs / 200);
  EXPECT_EQ(dist.ZeroGroups(), 0u);
  EXPECT_LT(dist.StdDevNm(), 0.1);
  EXPECT_LT(dist.MaxDevNm(), 0.25);
}

TEST(IwSamplerTest, SampleKWithoutReplacementDistinctGroups) {
  SamplerOptions opts = BaseOptions(2, 1.0, 19);
  opts.k = 5;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  const NoisyDataset data = SmallClusters(60, 3, 1.0, 20);
  for (const Point& p : data.points) sampler.Insert(p);
  ASSERT_GE(sampler.accept_size(), 5u);
  Xoshiro256pp rng(21);
  const auto result = sampler.SampleK(5, &rng);
  ASSERT_TRUE(result.ok());
  std::set<uint32_t> sampled_groups;
  for (const SampleItem& item : result.value()) {
    sampled_groups.insert(data.group_of[item.stream_index]);
  }
  EXPECT_EQ(sampled_groups.size(), 5u);  // distinct groups
}

TEST(IwSamplerTest, SampleKFailsWhenNotEnoughGroups) {
  auto sampler = RobustL0SamplerIW::Create(BaseOptions(2, 1.0, 22)).value();
  sampler.Insert(Point{0.0, 0.0});
  Xoshiro256pp rng(23);
  const auto result = sampler.SampleK(3, &rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IwSamplerTest, KOptionScalesAcceptCap) {
  SamplerOptions opts = BaseOptions(2, 1.0, 24);
  const size_t base_cap = opts.EffectiveAcceptCap();
  opts.k = 4;
  EXPECT_EQ(opts.EffectiveAcceptCap(), 4 * base_cap);
}

TEST(IwSamplerTest, ReservoirModeReturnsUniformPointWithinGroup) {
  // One group, 8 points: with the Section 2.3 reservoir variant each point
  // must be returned with probability ~1/8.
  const size_t points_in_group = 8;
  std::vector<Point> group;
  for (size_t i = 0; i < points_in_group; ++i) {
    group.push_back(
        Point{0.05 * static_cast<double>(i), 0.02 * static_cast<double>(i)});
  }
  SampleDistribution dist(points_in_group);
  const int runs = 20000;
  for (int run = 0; run < runs; ++run) {
    SamplerOptions opts = BaseOptions(2, 1.0, 3000 + run);
    opts.random_representative = true;
    auto sampler = RobustL0SamplerIW::Create(opts).value();
    for (const Point& p : group) sampler.Insert(p);
    Xoshiro256pp rng(7000 + run);
    const auto sample = sampler.Sample(&rng);
    ASSERT_TRUE(sample.has_value());
    dist.Record(static_cast<uint32_t>(sample->stream_index));
  }
  EXPECT_EQ(dist.ZeroGroups(), 0u);
  EXPECT_LT(dist.MaxDevNm(), 0.15);
}

TEST(IwSamplerTest, FixedModeAlwaysReturnsRepresentative) {
  std::vector<Point> group{Point{0.0, 0.0}, Point{0.1, 0.0},
                           Point{0.0, 0.1}};
  for (int run = 0; run < 50; ++run) {
    auto sampler =
        RobustL0SamplerIW::Create(BaseOptions(2, 1.0, 100 + run)).value();
    for (const Point& p : group) sampler.Insert(p);
    Xoshiro256pp rng(run);
    const auto sample = sampler.Sample(&rng);
    ASSERT_TRUE(sample.has_value());
    EXPECT_EQ(sample->stream_index, 0u);  // always the first point
  }
}

TEST(IwSamplerTest, SpaceStaysLogarithmic) {
  SamplerOptions opts = BaseOptions(2, 1.0, 25);
  opts.accept_cap = 16;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  const NoisyDataset data = SmallClusters(2000, 2, 1.0, 26);
  for (const Point& p : data.points) sampler.Insert(p);
  // Reps stored = accept + reject; both are O(cap) with the constant from
  // Lemma 2.6 (≤ 24x in the 2-d side=α/2 regime). Generous bound:
  EXPECT_LE(sampler.accept_size() + sampler.reject_size(), 50u * 16u);
  // Peak words must be far below storing all 2000 representatives.
  EXPECT_LT(sampler.PeakSpaceWords(),
            2000u * PointWords(2) / 2);
  EXPECT_GT(sampler.PeakSpaceWords(), 0u);
}

TEST(IwSamplerTest, PointsProcessedCounts) {
  auto sampler = RobustL0SamplerIW::Create(BaseOptions(2, 1.0, 27)).value();
  for (int i = 0; i < 17; ++i) {
    sampler.Insert(Point{static_cast<double>(10 * i), 0.0});
  }
  EXPECT_EQ(sampler.points_processed(), 17u);
}

TEST(IwSamplerTest, HighDimGridSideIsDTimesAlpha) {
  SamplerOptions opts = BaseOptions(8, 0.25, 28);
  opts.side_mode = GridSideMode::kHighDim;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  EXPECT_DOUBLE_EQ(sampler.grid().side(), 8 * 0.25);
  SamplerOptions c = opts;
  c.side_mode = GridSideMode::kConstantDim;
  auto sampler2 = RobustL0SamplerIW::Create(c).value();
  EXPECT_DOUBLE_EQ(sampler2.grid().side(), 0.125);
}

TEST(IwSamplerTest, KWiseHashFamilyWorksEndToEnd) {
  SamplerOptions opts = BaseOptions(2, 1.0, 29);
  opts.hash_family = HashFamily::kKWisePoly;
  opts.kwise_k = 16;
  opts.accept_cap = 8;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  const NoisyDataset data = SmallClusters(200, 3, 1.0, 30);
  for (const Point& p : data.points) sampler.Insert(p);
  EXPECT_GE(sampler.accept_size(), 1u);
  EXPECT_LE(sampler.accept_size(), 8u);
  Xoshiro256pp rng(31);
  EXPECT_TRUE(sampler.Sample(&rng).has_value());
}

}  // namespace
}  // namespace rl0
