// Tests for ShardedSamplerPool: thread-parallel sharded ingestion plus
// merge-on-query.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rl0/baseline/naive_robust.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/metrics/distribution.h"
#include "rl0/stream/dataset.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace rl0 {
namespace {

SamplerOptions PoolOptions(uint64_t seed) {
  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.expected_stream_length = 1 << 14;
  return opts;
}

NoisyDataset PoolData(uint64_t seed, size_t groups = 120) {
  const BaseDataset base = RandomUniform(groups, 2, seed);
  NearDupOptions nd;
  nd.max_dups = 5;
  nd.seed = seed + 1;
  NoisyDataset data = MakeNearDuplicates(base, nd);
  for (Point& p : data.points) p = p * (1.0 / data.alpha);
  data.alpha = 1.0;
  return data;
}

TEST(ShardedPoolTest, CreateValidates) {
  EXPECT_FALSE(ShardedSamplerPool::Create(PoolOptions(1), 0).ok());
  SamplerOptions bad;
  EXPECT_FALSE(ShardedSamplerPool::Create(bad, 4).ok());
  EXPECT_TRUE(ShardedSamplerPool::Create(PoolOptions(1), 4).ok());
}

TEST(ShardedPoolTest, ParallelConsumeCountsEveryPoint) {
  const NoisyDataset data = PoolData(3);
  auto pool = ShardedSamplerPool::Create(PoolOptions(5), 4).value();
  pool.ConsumeParallel(data.points);
  EXPECT_EQ(pool.points_processed(), data.points.size());
  // Round-robin split: shard sizes differ by at most one.
  for (size_t s = 0; s < 4; ++s) {
    const uint64_t count = pool.shard(s).points_processed();
    EXPECT_GE(count, data.points.size() / 4);
    EXPECT_LE(count, data.points.size() / 4 + 1);
  }
}

TEST(ShardedPoolTest, MergedCoversAllGroupsAtRateOne) {
  const NoisyDataset data = PoolData(7, 40);
  SamplerOptions opts = PoolOptions(9);
  opts.accept_cap = 1000;  // R stays 1: merged must hold every group
  auto pool = ShardedSamplerPool::Create(opts, 3).value();
  pool.ConsumeParallel(data.points);
  auto merged = pool.Merged().value();
  EXPECT_EQ(merged.accept_size(), 40u);
  EXPECT_EQ(merged.points_processed(), data.points.size());
}

TEST(ShardedPoolTest, DeterministicAcrossRuns) {
  // The round-robin partition is scheduling-independent, so two pools over
  // the same input must merge to identical state.
  const NoisyDataset data = PoolData(11);
  SamplerOptions opts = PoolOptions(13);
  opts.accept_cap = 12;
  auto a = ShardedSamplerPool::Create(opts, 4).value();
  auto b = ShardedSamplerPool::Create(opts, 4).value();
  a.ConsumeParallel(data.points);
  b.ConsumeParallel(data.points);
  auto merged_a = a.Merged().value();
  auto merged_b = b.Merged().value();
  EXPECT_EQ(merged_a.level(), merged_b.level());
  EXPECT_EQ(merged_a.accept_size(), merged_b.accept_size());
  EXPECT_EQ(merged_a.reject_size(), merged_b.reject_size());
  const auto sa = merged_a.Sample(uint64_t{99});
  const auto sb = merged_b.Sample(uint64_t{99});
  ASSERT_TRUE(sa.has_value() && sb.has_value());
  EXPECT_EQ(sa->point, sb->point);
}

TEST(ShardedPoolTest, MergedSamplingNearUniform) {
  const size_t groups = 30;
  SampleDistribution dist(groups);
  const int runs = 4000;
  int empty_runs = 0;
  for (int run = 0; run < runs; ++run) {
    SamplerOptions opts = PoolOptions(1000 + run);
    opts.dim = 1;
    opts.accept_cap = 10;
    auto pool = ShardedSamplerPool::Create(opts, 3).value();
    std::vector<Point> points;
    for (size_t g = 0; g < groups; ++g) {
      points.push_back(Point{10.0 * static_cast<double>(g)});
      points.push_back(Point{10.0 * static_cast<double>(g) + 0.3});
    }
    pool.ConsumeParallel(points);
    auto merged = pool.Merged().value();
    Xoshiro256pp rng(5000 + run);
    const auto sample = merged.Sample(&rng);
    if (!sample.has_value()) {
      ++empty_runs;
      continue;
    }
    dist.Record(static_cast<uint32_t>(sample->point[0] / 10.0 + 0.5));
  }
  EXPECT_LT(empty_runs, runs / 100);
  EXPECT_EQ(dist.ZeroGroups(), 0u);
  EXPECT_LT(dist.MaxDevNm(), 0.5);
}

TEST(ShardedPoolTest, SingleShardDegeneratesToPlainSampler) {
  const NoisyDataset data = PoolData(15, 25);
  SamplerOptions opts = PoolOptions(17);
  opts.accept_cap = 12;
  auto pool = ShardedSamplerPool::Create(opts, 1).value();
  pool.ConsumeParallel(data.points);
  auto plain = RobustL0SamplerIW::Create(opts).value();
  for (const Point& p : data.points) plain.Insert(p);
  auto merged = pool.Merged().value();
  EXPECT_EQ(merged.accept_size(), plain.accept_size());
  EXPECT_EQ(merged.reject_size(), plain.reject_size());
  EXPECT_EQ(merged.level(), plain.level());
}

}  // namespace
}  // namespace rl0
