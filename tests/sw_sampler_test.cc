// Tests for RobustL0SamplerSW (paper Algorithms 3-5): the hierarchical
// sliding-window sampler. Covers the Lemma 2.10 non-emptiness guarantee,
// window correctness (no expired group is ever returned), per-level cap
// maintenance via Split/Merge cascades, uniformity over window groups,
// space bounds, and time-based windows.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "rl0/baseline/naive_robust.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/metrics/distribution.h"

namespace rl0 {
namespace {

SamplerOptions BaseOptions(size_t dim, double alpha, uint64_t seed) {
  SamplerOptions opts;
  opts.dim = dim;
  opts.alpha = alpha;
  opts.seed = seed;
  opts.expected_stream_length = 1 << 16;
  return opts;
}

/// A stream of single-point groups: point i at coordinate 10·i, far apart.
Point Isolated(int i) { return Point{10.0 * static_cast<double>(i)}; }

TEST(SwSamplerTest, CreateValidates) {
  SamplerOptions bad;
  EXPECT_FALSE(RobustL0SamplerSW::Create(bad, 16).ok());
  EXPECT_FALSE(RobustL0SamplerSW::Create(BaseOptions(1, 1.0, 1), 0).ok());
  EXPECT_FALSE(RobustL0SamplerSW::Create(BaseOptions(1, 1.0, 1), -5).ok());
  EXPECT_TRUE(RobustL0SamplerSW::Create(BaseOptions(1, 1.0, 1), 16).ok());
}

TEST(SwSamplerTest, LevelCountIsLogWindowPlusOne) {
  EXPECT_EQ(RobustL0SamplerSW::Create(BaseOptions(1, 1.0, 1), 1)
                .value()
                .num_levels(),
            1u);
  EXPECT_EQ(RobustL0SamplerSW::Create(BaseOptions(1, 1.0, 1), 16)
                .value()
                .num_levels(),
            5u);
  EXPECT_EQ(RobustL0SamplerSW::Create(BaseOptions(1, 1.0, 1), 17)
                .value()
                .num_levels(),
            6u);
}

TEST(SwSamplerTest, EmptyWindowReturnsNullopt) {
  auto sampler = RobustL0SamplerSW::Create(BaseOptions(1, 1.0, 2), 8).value();
  Xoshiro256pp rng(3);
  EXPECT_FALSE(sampler.Sample(0, &rng).has_value());
  sampler.Insert(Isolated(0), 0);
  EXPECT_TRUE(sampler.Sample(0, &rng).has_value());
  // Window slides past every point: empty again.
  EXPECT_FALSE(sampler.Sample(100, &rng).has_value());
}

TEST(SwSamplerTest, NonEmptyWindowAlwaysYieldsSample) {
  // Lemma 2.10: whenever the window holds at least one point, a sample
  // exists. Checked after every insertion across several seeds.
  for (uint64_t seed = 0; seed < 5; ++seed) {
    SamplerOptions opts = BaseOptions(1, 1.0, 40 + seed);
    opts.accept_cap = 8;  // small cap to force real split/merge traffic
    auto sampler = RobustL0SamplerSW::Create(opts, 64).value();
    Xoshiro256pp rng(seed);
    for (int i = 0; i < 500; ++i) {
      sampler.Insert(Isolated(i % 200), i);
      const auto sample = sampler.Sample(i, &rng);
      ASSERT_TRUE(sample.has_value()) << "seed=" << seed << " i=" << i;
    }
  }
}

TEST(SwSamplerTest, SampleAlwaysFromAliveGroup) {
  // The returned point must belong to a group with a point in the window.
  SamplerOptions opts = BaseOptions(1, 1.0, 5);
  opts.accept_cap = 8;
  auto sampler = RobustL0SamplerSW::Create(opts, 32).value();
  NaiveWindowSampler naive(1.0, 32);
  Xoshiro256pp rng(6);
  std::vector<Point> stream;
  for (int i = 0; i < 400; ++i) stream.push_back(Isolated(i % 100));
  for (int i = 0; i < static_cast<int>(stream.size()); ++i) {
    sampler.Insert(stream[i], i);
    naive.Insert(stream[i], i);
    const auto sample = sampler.Sample(i, &rng);
    ASSERT_TRUE(sample.has_value());
    // The sampled point's group (identified by coordinate) must be alive:
    // some stream point within alpha of it must have a stamp in (i-32, i].
    bool alive = false;
    for (int j = std::max(0, i - 31); j <= i; ++j) {
      alive = alive || WithinDistance(stream[j], sample->point, 1.0);
    }
    EXPECT_TRUE(alive) << "i=" << i;
  }
}

TEST(SwSamplerTest, ExpiredGroupNeverReturned) {
  SamplerOptions opts = BaseOptions(1, 1.0, 7);
  auto sampler = RobustL0SamplerSW::Create(opts, 16).value();
  // Group 0 appears only at the start; groups 1..40 afterwards.
  sampler.Insert(Isolated(0), 0);
  for (int i = 1; i <= 40; ++i) sampler.Insert(Isolated(i), i);
  Xoshiro256pp rng(8);
  for (int q = 0; q < 200; ++q) {
    const auto sample = sampler.Sample(40, &rng);
    ASSERT_TRUE(sample.has_value());
    EXPECT_FALSE(WithinDistance(sample->point, Isolated(0), 1.0))
        << "expired group 0 sampled";
  }
}

TEST(SwSamplerTest, PerLevelAcceptCapsMaintained) {
  SamplerOptions opts = BaseOptions(1, 1.0, 9);
  opts.accept_cap = 8;
  auto sampler = RobustL0SamplerSW::Create(opts, 256).value();
  for (int i = 0; i < 2000; ++i) {
    sampler.Insert(Isolated(i), i);
    if (sampler.error_count() == 0 && sampler.stuck_split_count() == 0) {
      for (size_t l = 0; l < sampler.num_levels(); ++l) {
        ASSERT_LE(sampler.level(l).accept_size(), 8u)
            << "level " << l << " over cap at i=" << i;
      }
    }
  }
}

TEST(SwSamplerTest, UniformityOverWindowGroupsWithinConstantFactor) {
  // Window of 64 single-point groups; 4000 independent sampler instances.
  // Theorem 2.7 states exact uniformity, but the pseudocode's query-time
  // weighting (include level-ℓ points with probability R_ℓ/R_c) is exact
  // only for groups in the *interior* of a subwindow: the boundary groups
  // — the newest ~log w arrivals, which are accepted directly at their
  // hash level — are in their own subwindow's accept set with probability
  // 1 rather than 1/R_ℓ. Measured effect: a smooth recency bias from
  // ~0.7x (oldest) to ~2.4x (newest) of the uniform target, i.e. the
  // guarantee that actually holds is Θ(1/n) per group, mirroring the
  // paper's own relaxed guarantee (2) for general datasets. See
  // DESIGN.md §3 and EXPERIMENTS.md; bench_sliding_window plots the
  // profile. This test asserts the Θ(1/n) band.
  const int window = 64;
  const int stream_len = 300;
  const int runs = 4000;
  SampleDistribution dist(window);
  for (int run = 0; run < runs; ++run) {
    SamplerOptions opts = BaseOptions(1, 1.0, 10000 + run);
    opts.accept_cap = 10;
    auto sampler = RobustL0SamplerSW::Create(opts, window).value();
    for (int i = 0; i < stream_len; ++i) sampler.Insert(Isolated(i), i);
    Xoshiro256pp rng(90000 + run);
    const auto sample = sampler.Sample(stream_len - 1, &rng);
    ASSERT_TRUE(sample.has_value());
    // Alive groups are stream positions stream_len-window .. stream_len-1;
    // map the sampled coordinate back to its position offset.
    const int pos = static_cast<int>(sample->point[0] / 10.0 + 0.5);
    const int offset = pos - (stream_len - window);
    ASSERT_GE(offset, 0);
    ASSERT_LT(offset, window);
    dist.Record(static_cast<uint32_t>(offset));
  }
  EXPECT_EQ(dist.ZeroGroups(), 0u);
  // Θ(1/n): every group within [1/4, 4] of the uniform frequency.
  const double expected =
      static_cast<double>(runs) / static_cast<double>(window);
  EXPECT_GT(static_cast<double>(dist.MinCount()), expected / 4.0);
  EXPECT_LT(static_cast<double>(dist.MaxCount()), expected * 4.0);
  EXPECT_LT(dist.StdDevNm(), 0.6);
  EXPECT_LT(dist.MaxDevNm(), 2.5);
}

TEST(SwSamplerTest, RecurringGroupStaysSampleable) {
  // One group keeps re-appearing while many others pass through; it must
  // remain sampleable the whole time.
  SamplerOptions opts = BaseOptions(1, 1.0, 11);
  auto sampler = RobustL0SamplerSW::Create(opts, 32).value();
  Xoshiro256pp rng(12);
  int hits = 0;
  int queries = 0;
  for (int i = 0; i < 600; ++i) {
    if (i % 8 == 0) {
      sampler.Insert(Point{0.0}, i);  // the recurring group
    } else {
      sampler.Insert(Isolated(100 + i), i);
    }
    if (i >= 100 && i % 10 == 0) {
      for (int q = 0; q < 100; ++q) {
        const auto sample = sampler.Sample(i, &rng);
        ASSERT_TRUE(sample.has_value());
        ++queries;
        hits += WithinDistance(sample->point, Point{0.0}, 1.0);
      }
    }
  }
  // The recurring group is one of ~29 alive groups. Its record is old
  // (tracked at a deep level most of the time), so the boundary recency
  // bias of DESIGN.md §3 pushes it well below parity — empirically the
  // hit rate sits near 0.008 for any query seed or group-iteration
  // order. Assert the Θ(1) sampleability band with ≈3σ slack instead of
  // a knife-edge cut (the old 0.005 bound flipped on iteration-order
  // changes of the query pool).
  const double rate = static_cast<double>(hits) / queries;
  EXPECT_GT(rate, 0.004);
  EXPECT_LT(rate, 0.15);
}

TEST(SwSamplerTest, SpaceStaysPolylog) {
  // O(log w · log m) scaling: quadrupling the window must grow peak space
  // far slower than 4x (log w adds one or two levels), and the absolute
  // footprint stays below storing the raw window.
  SamplerOptions opts = BaseOptions(1, 1.0, 13);
  opts.accept_cap = 10;
  auto small = RobustL0SamplerSW::Create(opts, 256).value();
  auto large = RobustL0SamplerSW::Create(opts, 4096).value();
  for (int i = 0; i < 12000; ++i) {
    small.Insert(Isolated(i), i);
    large.Insert(Isolated(i), i);
  }
  EXPECT_LT(large.PeakSpaceWords(), 4096u * PointWords(1));
  EXPECT_LT(static_cast<double>(large.PeakSpaceWords()),
            2.5 * static_cast<double>(small.PeakSpaceWords()));
  // And per level the tracked groups stay bounded.
  for (size_t l = 0; l < large.num_levels(); ++l) {
    EXPECT_LE(large.level(l).group_count(), 30u * 10u) << "level " << l;
  }
}

TEST(SwSamplerTest, SequenceInsertStampsByArrival) {
  auto sampler =
      RobustL0SamplerSW::Create(BaseOptions(1, 1.0, 14), 4).value();
  for (int i = 0; i < 10; ++i) sampler.Insert(Isolated(i));
  EXPECT_EQ(sampler.points_processed(), 10u);
  EXPECT_EQ(sampler.latest_stamp(), 9);
  Xoshiro256pp rng(15);
  // Only the last 4 single-point groups are alive.
  for (int q = 0; q < 100; ++q) {
    const auto sample = sampler.SampleLatest(&rng);
    ASSERT_TRUE(sample.has_value());
    EXPECT_GE(sample->point[0], 10.0 * 6);
  }
}

TEST(SwSamplerTest, TimeBasedWindowRespectsGaps) {
  auto sampler =
      RobustL0SamplerSW::Create(BaseOptions(1, 1.0, 16), 10).value();
  sampler.Insert(Isolated(1), 100);
  sampler.Insert(Isolated(2), 104);
  sampler.Insert(Isolated(3), 118);  // first two are now expired
  Xoshiro256pp rng(17);
  for (int q = 0; q < 50; ++q) {
    const auto sample = sampler.Sample(118, &rng);
    ASSERT_TRUE(sample.has_value());
    EXPECT_TRUE(WithinDistance(sample->point, Isolated(3), 1.0));
  }
}

TEST(SwSamplerTest, DeterministicGivenSeed) {
  auto a = RobustL0SamplerSW::Create(BaseOptions(1, 1.0, 18), 32).value();
  auto b = RobustL0SamplerSW::Create(BaseOptions(1, 1.0, 18), 32).value();
  for (int i = 0; i < 200; ++i) {
    a.Insert(Isolated(i % 80), i);
    b.Insert(Isolated(i % 80), i);
  }
  for (size_t l = 0; l < a.num_levels(); ++l) {
    EXPECT_EQ(a.level(l).accept_size(), b.level(l).accept_size());
    EXPECT_EQ(a.level(l).group_count(), b.level(l).group_count());
  }
  Xoshiro256pp ra(19), rb(19);
  const auto sa = a.Sample(199, &ra);
  const auto sb = b.Sample(199, &rb);
  ASSERT_TRUE(sa.has_value() && sb.has_value());
  EXPECT_EQ(sa->point, sb->point);
}

TEST(SwSamplerTest, DeepestNonEmptyLevelGrowsWithGroups) {
  // More alive groups push occupancy to deeper levels (the F0-SW signal).
  SamplerOptions opts = BaseOptions(1, 1.0, 20);
  opts.accept_cap = 8;
  double deep_small = 0.0, deep_large = 0.0;
  const int seeds = 30;
  for (int seed = 0; seed < seeds; ++seed) {
    SamplerOptions o = opts;
    o.seed = 300 + seed;
    auto small = RobustL0SamplerSW::Create(o, 4096).value();
    for (int i = 0; i < 8; ++i) small.Insert(Isolated(i), i);
    deep_small +=
        static_cast<double>(small.DeepestNonEmptyLevel(7).value_or(0));
    o.seed = 600 + seed;
    auto large = RobustL0SamplerSW::Create(o, 4096).value();
    for (int i = 0; i < 2048; ++i) large.Insert(Isolated(i), i);
    deep_large +=
        static_cast<double>(large.DeepestNonEmptyLevel(2047).value_or(0));
  }
  EXPECT_GT(deep_large / seeds, deep_small / seeds + 3.0);
}

TEST(SwSamplerTest, StressTinyCapDoesNotCrash) {
  // Adversarial configuration: cap 2 with hundreds of window groups forces
  // constant cascades; the structure must stay usable and report its
  // error/stuck events rather than failing.
  SamplerOptions opts = BaseOptions(1, 1.0, 21);
  opts.accept_cap = 2;
  auto sampler = RobustL0SamplerSW::Create(opts, 256).value();
  Xoshiro256pp rng(22);
  for (int i = 0; i < 2000; ++i) {
    sampler.Insert(Isolated(i % 500), i);
    if (i % 50 == 0) {
      ASSERT_TRUE(sampler.Sample(i, &rng).has_value());
    }
  }
  SUCCEED() << "errors=" << sampler.error_count()
            << " stuck=" << sampler.stuck_split_count();
}

TEST(SwSamplerTest, SampleKReturnsDistinctAliveGroups) {
  SamplerOptions opts = BaseOptions(1, 1.0, 25);
  opts.k = 4;
  auto sampler = RobustL0SamplerSW::Create(opts, 32).value();
  for (int i = 0; i < 100; ++i) sampler.Insert(Isolated(i), i);
  // The unified pool is a random 1/R_c-rate subset and may transiently be
  // smaller than k; retrying with fresh query randomness redraws it (see
  // the SampleK contract).
  Xoshiro256pp rng(26);
  bool succeeded = false;
  for (int attempt = 0; attempt < 50 && !succeeded; ++attempt) {
    const auto result = sampler.SampleK(4, 99, &rng);
    if (!result.ok()) continue;
    succeeded = true;
    std::set<int> groups;
    for (const SampleItem& item : result.value()) {
      // Alive and distinct.
      EXPECT_GT(static_cast<int64_t>(item.stream_index), 99 - 32);
      groups.insert(static_cast<int>(item.point[0] / 10.0 + 0.5));
    }
    EXPECT_EQ(groups.size(), 4u);
  }
  EXPECT_TRUE(succeeded) << "pool never reached k across 50 redraws";
}

TEST(SwSamplerTest, SampleKFailsWhenWindowTooSmall) {
  auto sampler =
      RobustL0SamplerSW::Create(BaseOptions(1, 1.0, 27), 4).value();
  sampler.Insert(Isolated(0), 0);
  sampler.Insert(Isolated(1), 1);
  Xoshiro256pp rng(28);
  const auto result = sampler.SampleK(10, 1, &rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SwSamplerTest, WindowOneDegeneratesToLatestPoint) {
  auto sampler =
      RobustL0SamplerSW::Create(BaseOptions(1, 1.0, 23), 1).value();
  Xoshiro256pp rng(24);
  for (int i = 0; i < 20; ++i) {
    sampler.Insert(Isolated(i), i);
    const auto sample = sampler.Sample(i, &rng);
    ASSERT_TRUE(sample.has_value());
    EXPECT_TRUE(WithinDistance(sample->point, Isolated(i), 1.0));
  }
}

}  // namespace
}  // namespace rl0
