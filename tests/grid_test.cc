// Unit tests for rl0/grid: cell coordinates, keys, and the adj(p) DFS
// (paper Algorithms 6-7 and the |adj| bounds used by Lemmas 2.6 / 4.2).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include "rl0/geom/point.h"
#include "rl0/grid/cell.h"
#include "rl0/grid/random_grid.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

TEST(CellKeyTest, DeterministicAndCoordSensitive) {
  EXPECT_EQ(CellKeyOf({1, 2, 3}), CellKeyOf({1, 2, 3}));
  EXPECT_NE(CellKeyOf({1, 2, 3}), CellKeyOf({1, 2, 4}));
  EXPECT_NE(CellKeyOf({1, 2, 3}), CellKeyOf({3, 2, 1}));
  EXPECT_NE(CellKeyOf({5}), CellKeyOf({5, 0}));  // dimension-sensitive
}

TEST(CellKeyTest, NoCollisionsOnDenseBlock) {
  std::set<uint64_t> keys;
  for (int64_t x = -10; x <= 10; ++x) {
    for (int64_t y = -10; y <= 10; ++y) {
      keys.insert(CellKeyOf({x, y}));
    }
  }
  EXPECT_EQ(keys.size(), 21u * 21u);
}

TEST(RowMajorCellId2DTest, MatchesPaperFormula) {
  // Paper: cell on row i, column j gets ID (i-1)·Δ + j with 1-based
  // indices; our 0-based equivalent is row·Δ + col.
  EXPECT_EQ(RowMajorCellId2D(0, 0, 100), 0u);
  EXPECT_EQ(RowMajorCellId2D(0, 99, 100), 99u);
  EXPECT_EQ(RowMajorCellId2D(1, 0, 100), 100u);
  EXPECT_EQ(RowMajorCellId2D(3, 7, 10), 37u);
}

TEST(RandomGridTest, OffsetWithinSide) {
  RandomGrid grid(3, 2.5, 99);
  ASSERT_EQ(grid.offset().size(), 3u);
  for (double o : grid.offset()) {
    EXPECT_GE(o, 0.0);
    EXPECT_LT(o, 2.5);
  }
}

TEST(RandomGridTest, DifferentSeedsDifferentOffsets) {
  RandomGrid a(2, 1.0, 1), b(2, 1.0, 2);
  EXPECT_NE(a.offset(), b.offset());
  RandomGrid c(2, 1.0, 1);
  EXPECT_EQ(a.offset(), c.offset());
}

TEST(RandomGridTest, CellCoordConsistentWithGeometry) {
  RandomGrid grid(2, 1.0, 5);
  const Point p{3.7, -2.2};
  const CellCoord c = grid.CellCoordOf(p);
  // p must lie inside the box of its own cell.
  EXPECT_DOUBLE_EQ(grid.DistanceToCell(p, c), 0.0);
  for (size_t i = 0; i < 2; ++i) {
    const double lo = grid.offset()[i] + static_cast<double>(c[i]) * 1.0;
    EXPECT_GE(p[i], lo);
    EXPECT_LT(p[i], lo + 1.0);
  }
}

TEST(RandomGridTest, NearbyPointsSameCell) {
  RandomGrid grid(2, 10.0, 3);
  const Point p{5.0, 5.0};
  const Point q{5.001, 5.001};
  EXPECT_EQ(grid.CellKeyOf(p), grid.CellKeyOf(q));
}

TEST(RandomGridTest, DistanceToCellKnownValues) {
  // Grid with zero-ish offset is hard to force; use relative checks: the
  // distance to the own cell is 0 and to a far cell grows with the gap.
  RandomGrid grid(1, 1.0, 17);
  const Point p{0.5};
  const CellCoord own = grid.CellCoordOf(p);
  CellCoord far = own;
  far[0] += 5;
  const double d5 = grid.DistanceToCell(p, far);
  far[0] += 1;
  const double d6 = grid.DistanceToCell(p, far);
  EXPECT_GT(d5, 3.0);
  EXPECT_NEAR(d6 - d5, 1.0, 1e-12);
}

TEST(AdjacencyTest, IncludesOwnCell) {
  RandomGrid grid(2, 1.0, 7);
  const Point p{0.3, 0.4};
  std::vector<uint64_t> adj;
  grid.AdjacentCells(p, 0.9, &adj);
  const uint64_t own = grid.CellKeyOf(p);
  EXPECT_NE(std::find(adj.begin(), adj.end(), own), adj.end());
}

TEST(AdjacencyTest, SortedAndUnique) {
  RandomGrid grid(3, 0.5, 11);
  const Point p{0.1, 0.2, 0.3};
  std::vector<uint64_t> adj;
  grid.AdjacentCells(p, 1.0, &adj);
  EXPECT_TRUE(std::is_sorted(adj.begin(), adj.end()));
  EXPECT_EQ(std::adjacent_find(adj.begin(), adj.end()), adj.end());
}

TEST(AdjacencyTest, ConstantDimBlockBound) {
  // Paper Lemma 2.6 (2-d, side α/2): |adj(p)| ≤ 25 (the 5x5 block).
  RandomGrid grid(2, 0.5, 13);  // side = α/2 with α = 1
  Xoshiro256pp rng(21);
  std::vector<uint64_t> adj;
  for (int i = 0; i < 200; ++i) {
    const Point p{10.0 * rng.NextDouble(), 10.0 * rng.NextDouble()};
    grid.AdjacentCells(p, 1.0, &adj);
    EXPECT_LE(adj.size(), 25u);
    EXPECT_GE(adj.size(), 9u);  // at least the 3x3 block around p
  }
}

TEST(AdjacencyTest, HighDimRegimeSmall) {
  // Side = d·α (Section 4): adj(p) is the own cell plus the few cells
  // within α across nearby faces; typically 1, at most 2^d in theory.
  const size_t d = 6;
  RandomGrid grid(d, 6.0, 19);  // α = 1
  Xoshiro256pp rng(23);
  std::vector<uint64_t> adj;
  size_t max_adj = 0;
  for (int i = 0; i < 500; ++i) {
    Point p(d);
    for (size_t j = 0; j < d; ++j) p[j] = 100.0 * rng.NextDouble();
    grid.AdjacentCells(p, 1.0, &adj);
    EXPECT_GE(adj.size(), 1u);
    max_adj = std::max(max_adj, adj.size());
  }
  EXPECT_LE(max_adj, 64u);  // far below the naive 3^6 = 729
}

// Property sweep: DFS result == naive block enumeration, across dimensions,
// side lengths and radii.
class AdjacencyEquivalence
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(AdjacencyEquivalence, DfsMatchesNaiveEnumeration) {
  const auto [dim, side, alpha] = GetParam();
  RandomGrid grid(static_cast<size_t>(dim), side,
                  static_cast<uint64_t>(dim * 1000) + 7);
  Xoshiro256pp rng(static_cast<uint64_t>(dim) * 31 +
                   static_cast<uint64_t>(side * 100));
  for (int trial = 0; trial < 50; ++trial) {
    Point p(static_cast<size_t>(dim));
    for (int j = 0; j < dim; ++j) {
      p[static_cast<size_t>(j)] = 20.0 * (rng.NextDouble() - 0.5);
    }
    std::vector<uint64_t> dfs, naive;
    grid.AdjacentCells(p, alpha, &dfs);
    grid.AdjacentCellsNaive(p, alpha, &naive);
    EXPECT_EQ(dfs, naive) << "dim=" << dim << " side=" << side
                          << " alpha=" << alpha << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdjacencyEquivalence,
    ::testing::Values(std::make_tuple(1, 1.0, 0.8),
                      std::make_tuple(1, 0.5, 1.0),
                      std::make_tuple(2, 0.5, 1.0),   // const-d regime
                      std::make_tuple(2, 1.0, 2.0),
                      std::make_tuple(3, 0.5, 1.0),
                      std::make_tuple(3, 3.0, 1.0),   // high-d regime
                      std::make_tuple(4, 4.0, 1.0),
                      std::make_tuple(5, 5.0, 1.0),
                      std::make_tuple(6, 2.0, 1.5),
                      std::make_tuple(7, 7.0, 1.0)));

TEST(AdjacencyPaperDfsTest, MatchesGeneralDfsWhenSideAtLeastAlpha) {
  // The literal Algorithm 6 explores only ±1 offsets, which is exact when
  // side ≥ α (the regime it was designed for in Section 6.2).
  for (size_t d : {2u, 3u, 5u}) {
    RandomGrid grid(d, static_cast<double>(d), 41 + d);  // side = d·α, α=1
    Xoshiro256pp rng(17 * d);
    std::vector<uint64_t> ours, paper;
    for (int trial = 0; trial < 100; ++trial) {
      Point p(d);
      for (size_t j = 0; j < d; ++j) p[j] = 50.0 * rng.NextDouble();
      grid.AdjacentCells(p, 1.0, &ours);
      grid.AdjacentCellsPaperDfs(p, 1.0, &paper);
      EXPECT_EQ(ours, paper) << "d=" << d << " trial=" << trial;
    }
  }
}

TEST(AdjacencyTest, RadiusMonotone) {
  RandomGrid grid(2, 1.0, 43);
  const Point p{0.0, 0.0};
  std::vector<uint64_t> small, large;
  grid.AdjacentCells(p, 0.5, &small);
  grid.AdjacentCells(p, 2.0, &large);
  // Every cell within 0.5 is within 2.0.
  for (uint64_t key : small) {
    EXPECT_NE(std::find(large.begin(), large.end(), key), large.end());
  }
  EXPECT_GT(large.size(), small.size());
}

TEST(AdjacencyTest, AllEmittedCellsWithinAlphaAndNoneMissed) {
  RandomGrid grid(2, 0.7, 47);
  const Point p{1.234, -0.567};
  const double alpha = 1.1;
  std::vector<CellCoord> coords;
  grid.AdjacentCellCoords(p, alpha, &coords);
  for (const CellCoord& c : coords) {
    EXPECT_LE(grid.DistanceToCell(p, c), alpha + 1e-12);
  }
  // Exhaustive check over a generous block: every cell within alpha is
  // emitted.
  const CellCoord base = grid.CellCoordOf(p);
  size_t within = 0;
  for (int64_t dx = -4; dx <= 4; ++dx) {
    for (int64_t dy = -4; dy <= 4; ++dy) {
      CellCoord c{base[0] + dx, base[1] + dy};
      if (grid.DistanceToCell(p, c) <= alpha) ++within;
    }
  }
  EXPECT_EQ(coords.size(), within);
}

TEST(AdjacencyTest, DfsNodeCounterInstrumentation) {
  RandomGrid grid(5, 5.0, 53);
  Point p(5);
  for (size_t j = 0; j < 5; ++j) p[j] = 2.0 + static_cast<double>(j);
  std::vector<uint64_t> adj;
  grid.AdjacentCells(p, 1.0, &adj);
  const uint64_t nodes = RandomGrid::last_dfs_nodes();
  EXPECT_GE(nodes, 1u);
  // Pruned search must visit far fewer nodes than the full 3^5 tree walk.
  EXPECT_LT(nodes, 3u * 243u);
}

}  // namespace
}  // namespace rl0
