// Determinism of the persistent ingestion pipeline (extends
// ingest_determinism_test.cc to the IngestPool-backed Feed/Drain path).
//
// The pipeline's contract has two layers:
//
//   1. Per-shard invariance: shard s consumes the points at *global*
//      stream positions ≡ s (mod S), so its input subsequence — and its
//      whole decision trajectory, including rate halvings — depends only
//      on (stream, S). Feeding in any chunking, with any interleaving of
//      Drain calls, must leave every shard in bit-identical state. This
//      holds at every rate, not just rate 1.
//
//   2. Merged-vs-pointwise: at rate 1 (accept cap above the group count)
//      judging is shard-independent, so the sharded-then-merged accept
//      and reject sets must reproduce the pointwise sampler's decisions
//      bit-for-bit, for any worker count and any chunking.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rl0/core/dup_filter.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/core/snapshot.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

struct Workload {
  const char* name;
  NoisyDataset data;
};

std::vector<Workload> Workloads() {
  std::vector<Workload> out;
  const auto add = [&out](const char* name, BaseDataset base, uint64_t seed) {
    NearDupOptions nd;
    nd.max_dups = 20;
    nd.seed = seed;
    out.push_back(Workload{name, MakeNearDuplicates(base, nd)});
  };
  add("Rand5", Rand5(), 21);
  add("Yacht", YachtLike(), 22);
  add("Rand20", Rand20(), 23);
  return out;
}

SamplerOptions BaseOptions(const NoisyDataset& data, uint64_t seed) {
  SamplerOptions opts;
  opts.dim = data.dim;
  opts.alpha = data.alpha;
  opts.seed = seed;
  opts.side_mode = GridSideMode::kHighDim;
  opts.expected_stream_length = data.size();
  return opts;
}

void ExpectSameItems(const std::vector<SampleItem>& got,
                     const std::vector<SampleItem>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].stream_index, want[i].stream_index);
    EXPECT_EQ(got[i].point, want[i].point);
  }
}

/// Feeds `points` in randomized chunk sizes (deterministic per seed);
/// optionally drains after every chunk.
void FeedRandomChunks(ShardedSamplerPool* pool, Span<const Point> points,
                      uint64_t chunk_seed, size_t max_chunk,
                      bool drain_between = false) {
  Xoshiro256pp rng(chunk_seed);
  size_t offset = 0;
  while (offset < points.size()) {
    const size_t chunk = 1 + static_cast<size_t>(rng.NextBounded(max_chunk));
    pool->Feed(points.subspan(offset, chunk));
    offset += chunk;
    if (drain_between) pool->Drain();
  }
  pool->Drain();
}

/// An exact-duplicate-heavy stream: `groups` well-separated centers,
/// each arrival is (with probability 0.8) a byte-identical repeat of a
/// center — the regime the duplicate-suppression front-end caches — and
/// otherwise a fresh within-alpha perturbation.
std::vector<Point> DupHeavyStream(size_t n, size_t groups, uint64_t seed) {
  Xoshiro256pp rng(SplitMix64(seed));
  std::vector<Point> centers;
  for (size_t g = 0; g < groups; ++g) {
    centers.push_back(Point{7.0 * static_cast<double>(g),
                            -3.0 * static_cast<double>(g)});
  }
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point p = centers[rng.NextBounded(groups)];
    if (rng.NextDouble() >= 0.8) {
      p[0] += 0.2 * (rng.NextDouble() - 0.5);
      p[1] += 0.2 * (rng.NextDouble() - 0.5);
    }
    out.push_back(p);
  }
  return out;
}

TEST(PipelineDeterminismTest, DupFilterOnOffBitIdentical) {
  // The front-end's decision-identity contract: with the filter on,
  // accepted decisions AND all RNG consumption must be bit-identical to
  // the filter-off run. Reservoir mode makes the RNG half observable —
  // the duplicate-loss path draws a reservoir coin per arrival, so any
  // extra or missing draw desynchronizes every later sample point.
  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 1.0;
  opts.seed = 611;
  opts.expected_stream_length = 4096;
  opts.random_representative = true;
  SamplerOptions off_opts = opts;
  off_opts.dup_filter = false;

  auto on = RobustL0SamplerIW::Create(opts).value();
  auto off = RobustL0SamplerIW::Create(off_opts).value();
  const std::vector<Point> stream = DupHeavyStream(4000, 40, 612);
  for (const Point& p : stream) {
    on.Insert(p);
    off.Insert(p);
  }

  EXPECT_EQ(on.level(), off.level());
  ExpectSameItems(on.AcceptedRepresentatives(),
                  off.AcceptedRepresentatives());
  ExpectSameItems(on.RejectedRepresentatives(),
                  off.RejectedRepresentatives());

  // Coin-stream identity: identical external query RNGs must draw
  // identical samples (the per-group sample points reflect every
  // internal reservoir coin consumed during ingestion).
  Xoshiro256pp rng_on(77), rng_off(77);
  for (int q = 0; q < 20; ++q) {
    const auto sample_on = on.Sample(&rng_on);
    const auto sample_off = off.Sample(&rng_off);
    ASSERT_EQ(sample_on.has_value(), sample_off.has_value());
    if (sample_on.has_value()) {
      EXPECT_EQ(sample_on->point, sample_off->point);
      EXPECT_EQ(sample_on->stream_index, sample_off->stream_index);
    }
  }

  // The filter is scratch state: snapshots must be byte-identical.
  std::string bytes_on, bytes_off;
  ASSERT_TRUE(SnapshotSampler(on, &bytes_on).ok());
  ASSERT_TRUE(SnapshotSampler(off, &bytes_off).ok());
  EXPECT_EQ(bytes_on, bytes_off);

  // The comparison is only meaningful if the replay path actually ran.
  if (DupFilter::kCompiledIn) {
    EXPECT_GT(on.filter_stats().hits, 0u);
  }
  EXPECT_EQ(off.filter_stats().hits, 0u);
  EXPECT_EQ(off.filter_stats().bypassed, off.points_processed());
}

TEST(PipelineDeterminismTest, DupFilterOnOffBitIdenticalSharded) {
  // Per-lane filters through the pipeline: every shard's state must be
  // bit-identical with the front-end on or off, under chunked feeding.
  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 1.0;
  opts.seed = 613;
  opts.expected_stream_length = 4096;
  SamplerOptions off_opts = opts;
  off_opts.dup_filter = false;
  const std::vector<Point> stream = DupHeavyStream(4000, 40, 614);
  const size_t shards = 3;

  auto pool_on = ShardedSamplerPool::Create(opts, shards).value();
  auto pool_off = ShardedSamplerPool::Create(off_opts, shards).value();
  FeedRandomChunks(&pool_on, stream, 881, /*max_chunk=*/97);
  FeedRandomChunks(&pool_off, stream, 882, /*max_chunk=*/41);

  for (size_t s = 0; s < shards; ++s) {
    SCOPED_TRACE(s);
    EXPECT_EQ(pool_on.shard(s).level(), pool_off.shard(s).level());
    ExpectSameItems(pool_on.shard(s).AcceptedRepresentatives(),
                    pool_off.shard(s).AcceptedRepresentatives());
    ExpectSameItems(pool_on.shard(s).RejectedRepresentatives(),
                    pool_off.shard(s).RejectedRepresentatives());
  }
  if (DupFilter::kCompiledIn) {
    EXPECT_GT(pool_on.FilterStats().hits, 0u);
  }
  EXPECT_EQ(pool_off.FilterStats().hits, 0u);
}

TEST(PipelineDeterminismTest, FeedMatchesPointwiseAcrossWorkerCounts) {
  for (const Workload& w : Workloads()) {
    SCOPED_TRACE(w.name);
    SamplerOptions opts = BaseOptions(w.data, 501);
    // Rate pinned at 1: merged decisions must be bit-identical to the
    // pointwise sampler (see ingest_determinism_test for why coarser
    // rates only guarantee distributional equality after a merge).
    opts.accept_cap = 1 << 20;
    auto pointwise = RobustL0SamplerIW::Create(opts).value();
    for (const Point& p : w.data.points) pointwise.Insert(p);
    ASSERT_EQ(pointwise.level(), 0u);

    uint64_t chunk_seed = 9000;
    for (size_t workers : {1, 2, 8}) {
      SCOPED_TRACE(workers);
      auto pool = ShardedSamplerPool::Create(opts, workers).value();
      FeedRandomChunks(&pool, w.data.points, ++chunk_seed,
                       /*max_chunk=*/97);
      EXPECT_EQ(pool.points_processed(), w.data.points.size());
      auto merged = pool.Merged().value();
      EXPECT_EQ(merged.level(), 0u);
      ExpectSameItems(merged.AcceptedRepresentatives(),
                      pointwise.AcceptedRepresentatives());
      ExpectSameItems(merged.RejectedRepresentatives(),
                      pointwise.RejectedRepresentatives());
    }
  }
}

TEST(PipelineDeterminismTest, PerShardStateInvariantUnderRechunking) {
  // The global-residue partition makes every shard's input independent of
  // chunk boundaries — per-shard states must match bit-for-bit even at a
  // natural accept cap, where rates rise and refilters run.
  for (const Workload& w : Workloads()) {
    SCOPED_TRACE(w.name);
    const SamplerOptions opts = BaseOptions(w.data, 502);
    const size_t shards = 3;

    auto whole = ShardedSamplerPool::Create(opts, shards).value();
    whole.ConsumeParallel(w.data.points);

    auto tiny = ShardedSamplerPool::Create(opts, shards).value();
    FeedRandomChunks(&tiny, w.data.points, 777, /*max_chunk=*/13);

    auto big = ShardedSamplerPool::Create(opts, shards).value();
    FeedRandomChunks(&big, w.data.points, 778, /*max_chunk=*/1000,
                     /*drain_between=*/true);

    for (size_t s = 0; s < shards; ++s) {
      SCOPED_TRACE(s);
      EXPECT_EQ(tiny.shard(s).level(), whole.shard(s).level());
      EXPECT_EQ(tiny.shard(s).points_processed(),
                whole.shard(s).points_processed());
      ExpectSameItems(tiny.shard(s).AcceptedRepresentatives(),
                      whole.shard(s).AcceptedRepresentatives());
      ExpectSameItems(tiny.shard(s).RejectedRepresentatives(),
                      whole.shard(s).RejectedRepresentatives());
      ExpectSameItems(big.shard(s).AcceptedRepresentatives(),
                      whole.shard(s).AcceptedRepresentatives());
      ExpectSameItems(big.shard(s).RejectedRepresentatives(),
                      whole.shard(s).RejectedRepresentatives());
    }
  }
}

TEST(PipelineDeterminismTest, PipelineAgreesWithSpawnJoinMergedAtRateOne) {
  // The legacy per-call spawn/join walk partitions by chunk-relative
  // residue, the pipeline by global residue — different per-shard
  // streams, same merged decisions at rate 1.
  const Workload w = Workloads()[0];
  SamplerOptions opts = BaseOptions(w.data, 503);
  opts.accept_cap = 1 << 20;

  auto spawn_join = ShardedSamplerPool::Create(opts, 4).value();
  auto pipelined = ShardedSamplerPool::Create(opts, 4).value();
  const Span<const Point> all(w.data.points);
  const size_t chunk = 211;
  for (size_t offset = 0; offset < all.size(); offset += chunk) {
    spawn_join.ConsumeParallelSpawnJoin(all.subspan(offset, chunk));
    pipelined.Feed(all.subspan(offset, chunk));
  }
  pipelined.Drain();
  EXPECT_EQ(spawn_join.points_processed(), pipelined.points_processed());
  ExpectSameItems(pipelined.Merged().value().AcceptedRepresentatives(),
                  spawn_join.Merged().value().AcceptedRepresentatives());
}

TEST(PipelineDeterminismTest, FeedVariantsAgree) {
  // Copying Feed, zero-copy FeedBorrowed and adopting FeedOwned must
  // produce identical shard states.
  const Workload w = Workloads()[1];
  const SamplerOptions opts = BaseOptions(w.data, 504);
  const size_t shards = 2;

  auto copied = ShardedSamplerPool::Create(opts, shards).value();
  auto borrowed = ShardedSamplerPool::Create(opts, shards).value();
  auto owned = ShardedSamplerPool::Create(opts, shards).value();
  const Span<const Point> all(w.data.points);
  const size_t chunk = 101;
  for (size_t offset = 0; offset < all.size(); offset += chunk) {
    const Span<const Point> piece = all.subspan(offset, chunk);
    copied.Feed(piece);
    borrowed.FeedBorrowed(piece);
    owned.FeedOwned(std::vector<Point>(piece.begin(), piece.end()));
  }
  copied.Drain();
  borrowed.Drain();
  owned.Drain();
  for (size_t s = 0; s < shards; ++s) {
    SCOPED_TRACE(s);
    ExpectSameItems(borrowed.shard(s).AcceptedRepresentatives(),
                    copied.shard(s).AcceptedRepresentatives());
    ExpectSameItems(owned.shard(s).AcceptedRepresentatives(),
                    copied.shard(s).AcceptedRepresentatives());
  }
}

TEST(PipelineDeterminismTest, AdaptiveChunkPolicyGrowsShrinksAndClamps) {
  AdaptiveChunkOptions opts;
  opts.min_chunk = 64;
  opts.max_chunk = 1024;
  opts.initial_chunk = 256;
  AdaptiveChunkPolicy policy(opts);
  EXPECT_EQ(policy.chunk(), 256u);
  // Backlog at/above the threshold doubles, up to the cap.
  policy.Observe(/*max_queue_depth=*/2, /*queue_capacity=*/4);
  EXPECT_EQ(policy.chunk(), 512u);
  policy.Observe(4, 4);
  EXPECT_EQ(policy.chunk(), 1024u);
  policy.Observe(4, 4);
  EXPECT_EQ(policy.chunk(), 1024u);  // clamped at max
  // Hysteresis band: shallow-but-nonempty queues leave the chunk alone.
  policy.Observe(1, 4);
  EXPECT_EQ(policy.chunk(), 1024u);
  // Starvation halves, down to the floor.
  policy.Observe(0, 4);
  EXPECT_EQ(policy.chunk(), 512u);
  for (int i = 0; i < 10; ++i) policy.Observe(0, 4);
  EXPECT_EQ(policy.chunk(), 64u);  // clamped at min
  // Degenerate options are sanitized rather than trusted.
  AdaptiveChunkOptions bad;
  bad.min_chunk = 0;
  bad.max_chunk = 0;
  bad.initial_chunk = 7;
  AdaptiveChunkPolicy sane(bad);
  EXPECT_GE(sane.chunk(), 1u);
  sane.Observe(0, 0);  // zero capacity must not divide by zero
}

TEST(PipelineDeterminismTest, AdaptiveFeedMatchesPointwiseAtRateOne) {
  // FeedAdaptive's chunk boundaries depend on live queue depths, so this
  // is the determinism contract applied to the policy: whatever chunking
  // it produces, merged state at rate 1 equals the pointwise sampler.
  const Workload w = Workloads()[0];
  SamplerOptions opts = BaseOptions(w.data, 507);
  opts.accept_cap = 1 << 20;
  auto pointwise = RobustL0SamplerIW::Create(opts).value();
  for (const Point& p : w.data.points) pointwise.Insert(p);

  auto pool = ShardedSamplerPool::Create(opts, 3).value();
  AdaptiveChunkOptions chunk_opts;
  chunk_opts.min_chunk = 32;
  chunk_opts.initial_chunk = 128;
  pool.chunk_policy() = AdaptiveChunkPolicy(chunk_opts);
  pool.FeedAdaptive(w.data.points);
  pool.Drain();
  EXPECT_EQ(pool.points_processed(), w.data.points.size());
  auto merged = pool.Merged().value();
  ExpectSameItems(merged.AcceptedRepresentatives(),
                  pointwise.AcceptedRepresentatives());
  ExpectSameItems(merged.RejectedRepresentatives(),
                  pointwise.RejectedRepresentatives());
}

TEST(PipelineDeterminismTest, MergedQuiescedAfterDrainEqualsMerged) {
  const Workload w = Workloads()[0];
  SamplerOptions opts = BaseOptions(w.data, 505);
  opts.accept_cap = 1 << 20;
  auto pool = ShardedSamplerPool::Create(opts, 3).value();
  pool.Feed(w.data.points);
  pool.Drain();
  auto merged = pool.Merged().value();
  auto quiesced = pool.MergedQuiesced().value();
  ExpectSameItems(quiesced.AcceptedRepresentatives(),
                  merged.AcceptedRepresentatives());
  ExpectSameItems(quiesced.RejectedRepresentatives(),
                  merged.RejectedRepresentatives());
}

}  // namespace
}  // namespace rl0
