// Tests for the Section 5 F0 estimators (infinite window and sliding
// window): accuracy against exact group counts, option validation, and
// median boosting behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rl0/core/f0_iw.h"
#include "rl0/core/f0_sw.h"

namespace rl0 {
namespace {

SamplerOptions BaseOptions(size_t dim, double alpha, uint64_t seed) {
  SamplerOptions opts;
  opts.dim = dim;
  opts.alpha = alpha;
  opts.seed = seed;
  opts.expected_stream_length = 1 << 16;
  return opts;
}

Point Isolated(int i) { return Point{10.0 * static_cast<double>(i)}; }

TEST(F0OptionsTest, Validation) {
  F0Options opts;
  opts.sampler = BaseOptions(1, 1.0, 1);
  EXPECT_TRUE(opts.Validate().ok());
  opts.epsilon = 0.0;
  EXPECT_FALSE(opts.Validate().ok());
  opts.epsilon = 1.5;
  EXPECT_FALSE(opts.Validate().ok());
  opts.epsilon = 0.2;
  opts.copies = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts.copies = 3;
  opts.kappa_b = -1;
  EXPECT_FALSE(opts.Validate().ok());
}

TEST(F0OptionsTest, PerCopyCapScalesWithEpsilon) {
  F0Options opts;
  opts.sampler = BaseOptions(1, 1.0, 1);
  opts.kappa_b = 12.0;
  opts.epsilon = 0.1;
  EXPECT_EQ(opts.PerCopyCap(), 1200u);
  opts.epsilon = 0.5;
  EXPECT_EQ(opts.PerCopyCap(), 48u);
}

TEST(F0IwTest, ZeroBeforeInsertions) {
  F0Options opts;
  opts.sampler = BaseOptions(1, 1.0, 2);
  auto est = F0EstimatorIW::Create(opts).value();
  EXPECT_DOUBLE_EQ(est.Estimate(), 0.0);
}

TEST(F0IwTest, ExactWhileUnderCap) {
  // With fewer groups than the per-copy cap, R stays 1 and the estimate is
  // exactly the group count.
  F0Options opts;
  opts.sampler = BaseOptions(1, 1.0, 3);
  opts.epsilon = 0.3;
  auto est = F0EstimatorIW::Create(opts).value();
  for (int i = 0; i < 40; ++i) {
    est.Insert(Isolated(i));
    est.Insert(Isolated(i) + Point{0.3});  // near-duplicate, same group
  }
  EXPECT_DOUBLE_EQ(est.Estimate(), 40.0);
}

TEST(F0IwTest, ApproximatesLargeGroupCounts) {
  F0Options opts;
  opts.sampler = BaseOptions(1, 1.0, 4);
  opts.epsilon = 0.15;
  opts.copies = 9;
  auto est = F0EstimatorIW::Create(opts).value();
  const int n = 5000;
  for (int i = 0; i < n; ++i) est.Insert(Isolated(i));
  const double estimate = est.Estimate();
  EXPECT_GT(estimate, n * 0.80);
  EXPECT_LT(estimate, n * 1.20);
}

TEST(F0IwTest, RobustToNearDuplicateInflation) {
  // 200 groups, each with 30 near-duplicates: a noiseless distinct counter
  // would report ~6200; the robust estimator must stay near 200.
  F0Options opts;
  opts.sampler = BaseOptions(1, 1.0, 5);
  opts.epsilon = 0.2;
  auto est = F0EstimatorIW::Create(opts).value();
  Xoshiro256pp rng(6);
  for (int i = 0; i < 200; ++i) {
    for (int c = 0; c < 31; ++c) {
      est.Insert(Isolated(i) + Point{0.4 * (rng.NextDouble() - 0.5)});
    }
  }
  const double estimate = est.Estimate();
  EXPECT_GT(estimate, 200 * 0.75);
  EXPECT_LT(estimate, 200 * 1.25);
}

TEST(F0IwTest, CopyEstimatesExposeSpread) {
  F0Options opts;
  opts.sampler = BaseOptions(1, 1.0, 7);
  opts.epsilon = 0.3;
  opts.copies = 5;
  auto est = F0EstimatorIW::Create(opts).value();
  for (int i = 0; i < 1000; ++i) est.Insert(Isolated(i));
  const std::vector<double> copies = est.CopyEstimates();
  EXPECT_EQ(copies.size(), 5u);
  for (double c : copies) {
    EXPECT_GT(c, 100.0);
    EXPECT_LT(c, 10000.0);
  }
}

TEST(F0IwTest, MedianRobustToOneBadCopy) {
  // Median of {a, b, c} ignores one outlier by construction; sanity-check
  // via the public API: estimates across copies differ yet the median is
  // within the band of the middle copies.
  F0Options opts;
  opts.sampler = BaseOptions(1, 1.0, 8);
  opts.epsilon = 0.25;
  opts.copies = 7;
  auto est = F0EstimatorIW::Create(opts).value();
  for (int i = 0; i < 2000; ++i) est.Insert(Isolated(i));
  std::vector<double> copies = est.CopyEstimates();
  std::sort(copies.begin(), copies.end());
  EXPECT_EQ(est.Estimate(), copies[copies.size() / 2]);
}

TEST(F0IwTest, SpaceScalesWithCopies) {
  F0Options opts;
  opts.sampler = BaseOptions(1, 1.0, 9);
  opts.copies = 2;
  auto small = F0EstimatorIW::Create(opts).value();
  opts.copies = 8;
  auto large = F0EstimatorIW::Create(opts).value();
  for (int i = 0; i < 100; ++i) {
    small.Insert(Isolated(i));
    large.Insert(Isolated(i));
  }
  EXPECT_GT(large.SpaceWords(), 3 * small.SpaceWords());
}

// -------------------------------------------------------------- F0 / SW

TEST(F0SwOptionsTest, Validation) {
  F0SwOptions opts;
  opts.sampler = BaseOptions(1, 1.0, 10);
  EXPECT_TRUE(opts.Validate().ok());
  opts.window = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts.window = 64;
  opts.copies = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts.copies = 4;
  opts.repetitions = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts.repetitions = 1;
  opts.phi = 0.0;
  EXPECT_FALSE(opts.Validate().ok());
}

TEST(F0SwTest, ZeroOnEmptyWindow) {
  F0SwOptions opts;
  opts.sampler = BaseOptions(1, 1.0, 11);
  opts.window = 64;
  opts.copies = 4;
  auto est = F0EstimatorSW::Create(opts).value();
  EXPECT_DOUBLE_EQ(est.Estimate(0), 0.0);
  est.Insert(Isolated(0), 0);
  EXPECT_GT(est.EstimateLatest(), 0.0);
  EXPECT_DOUBLE_EQ(est.Estimate(1000), 0.0);  // window slid past the point
}

class F0SwAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(F0SwAccuracy, TracksWindowGroupCountWithinConstantFactor) {
  // The FM-style combiner promises a constant-factor estimate; with 24
  // copies the factor should be comfortably within [1/3, 3].
  const int alive = GetParam();
  F0SwOptions opts;
  opts.sampler = BaseOptions(1, 1.0, 12 + static_cast<uint64_t>(alive));
  opts.window = 4096;
  opts.copies = 24;
  auto est = F0EstimatorSW::Create(opts).value();
  // `alive` groups in the window; stream twice as long so old groups
  // expire.
  int stamp = 0;
  for (int i = 0; i < 2 * alive; ++i) {
    est.Insert(Isolated(i), stamp);
    stamp += 4096 / (alive);  // the last `alive` points stay in window
  }
  const double truth = alive;
  const double estimate = est.Estimate(stamp);
  EXPECT_GT(estimate, truth / 3.0) << "alive=" << alive;
  EXPECT_LT(estimate, truth * 3.0) << "alive=" << alive;
}

INSTANTIATE_TEST_SUITE_P(GroupCounts, F0SwAccuracy,
                         ::testing::Values(16, 64, 256));

TEST(F0SwTest, HyperLogLogCombinerAlsoTracks) {
  F0SwOptions opts;
  opts.sampler = BaseOptions(1, 1.0, 13);
  opts.window = 4096;
  opts.copies = 24;
  opts.combiner = F0SwCombiner::kHyperLogLog;
  auto est = F0EstimatorSW::Create(opts).value();
  const int n = 128;
  for (int i = 0; i < n; ++i) est.Insert(Isolated(i), i);
  const double estimate = est.Estimate(n - 1);
  EXPECT_GT(estimate, n / 3.0);
  EXPECT_LT(estimate, n * 3.0);
}

TEST(F0SwTest, SlidesWithTheWindow) {
  // After the window slides to cover only 8 of the original 512 groups,
  // the estimate must drop accordingly.
  F0SwOptions opts;
  opts.sampler = BaseOptions(1, 1.0, 14);
  opts.window = 64;
  opts.copies = 16;
  auto est = F0EstimatorSW::Create(opts).value();
  for (int i = 0; i < 512; ++i) est.Insert(Isolated(i), i * 8);
  // now = last stamp: window covers stamps (last-64, last] = 8 points.
  const double few = est.EstimateLatest();
  EXPECT_LT(few, 40.0);
  EXPECT_GT(few, 1.0);
}

TEST(F0SwTest, SerialInsertsComposeWithPipelineFeed) {
  // Sequence-stamped serial inserts and pipelined Feeds share one global
  // index space (serial inserts advance the pipeline's index base), so
  // any interleaving — with a Drain between mode switches — must leave
  // the estimator bit-identical to a pure serial run.
  F0SwOptions opts;
  opts.sampler = BaseOptions(1, 1.0, 16);
  opts.window = 128;
  opts.copies = 4;
  std::vector<Point> points;
  for (int i = 0; i < 300; ++i) points.push_back(Isolated(i % 60));

  auto serial = F0EstimatorSW::Create(opts).value();
  for (const Point& p : points) serial.Insert(p);

  auto mixed = F0EstimatorSW::Create(opts).value();
  const Span<const Point> all(points);
  for (int i = 0; i < 50; ++i) mixed.Insert(points[i]);
  mixed.Feed(all.subspan(50, 150));
  mixed.Drain();
  mixed.Insert(points[200]);
  mixed.FeedOwned(std::vector<Point>(points.begin() + 201, points.end()));
  mixed.Drain();

  EXPECT_DOUBLE_EQ(mixed.EstimateLatest(), serial.EstimateLatest());
  // Bit-for-bit: every copy's per-level group state matches the serial
  // run (stamps and stream indices included — a stamp collision between
  // the modes would show here even where the FM median absorbs it).
  for (size_t c = 0; c < mixed.copies(); ++c) {
    const RobustL0SamplerSW& a = mixed.copy_sampler(c);
    const RobustL0SamplerSW& b = serial.copy_sampler(c);
    ASSERT_EQ(a.points_processed(), b.points_processed());
    ASSERT_EQ(a.latest_stamp(), b.latest_stamp());
    ASSERT_EQ(a.num_levels(), b.num_levels());
    for (size_t l = 0; l < a.num_levels(); ++l) {
      std::vector<GroupRecord> ga, gb;
      a.level(l).SnapshotGroups(&ga);
      b.level(l).SnapshotGroups(&gb);
      ASSERT_EQ(ga.size(), gb.size()) << "copy " << c << " level " << l;
      for (size_t i = 0; i < ga.size(); ++i) {
        ASSERT_EQ(ga[i].id, gb[i].id);
        ASSERT_EQ(ga[i].latest_stamp, gb[i].latest_stamp);
        ASSERT_EQ(ga[i].latest_index, gb[i].latest_index);
        ASSERT_EQ(ga[i].rep_index, gb[i].rep_index);
        ASSERT_EQ(ga[i].rep, gb[i].rep);
        ASSERT_EQ(ga[i].latest, gb[i].latest);
      }
    }
  }
}

TEST(F0SwTest, StampedFeedMatchesSerialExplicitStamps) {
  // The PR 3 limitation this pins the fix for: the first Feed of a
  // time-based estimator (explicit stamps diverged from arrival indices)
  // used to CHECK-fail outright. FeedStamped is the working path: the
  // stamp arrays ride the pipeline chunks, so any chunking must leave
  // every copy bit-identical to the pure serial explicit-stamp run.
  F0SwOptions opts;
  opts.sampler = BaseOptions(1, 1.0, 17);
  opts.window = 128;
  opts.copies = 4;
  std::vector<Point> points;
  std::vector<int64_t> stamps;
  int64_t t = 0;
  for (int i = 0; i < 300; ++i) {
    points.push_back(Isolated(i % 60));
    t += 1 + (i % 7);
    if (i % 90 == 89) t += 3 * 128;  // stamp jump past whole windows
    stamps.push_back(t);
  }

  auto serial = F0EstimatorSW::Create(opts).value();
  for (size_t i = 0; i < points.size(); ++i) {
    serial.Insert(points[i], stamps[i]);
  }

  auto fed = F0EstimatorSW::Create(opts).value();
  const Span<const Point> all(points);
  const Span<const int64_t> all_stamps(stamps);
  for (size_t offset = 0; offset < points.size(); offset += 77) {
    fed.FeedStamped(all.subspan(offset, 77), all_stamps.subspan(offset, 77));
  }
  fed.Drain();

  EXPECT_DOUBLE_EQ(fed.EstimateLatest(), serial.EstimateLatest());
  for (size_t c = 0; c < fed.copies(); ++c) {
    const RobustL0SamplerSW& a = fed.copy_sampler(c);
    const RobustL0SamplerSW& b = serial.copy_sampler(c);
    ASSERT_EQ(a.points_processed(), b.points_processed());
    ASSERT_EQ(a.latest_stamp(), b.latest_stamp());
    for (size_t l = 0; l < a.num_levels(); ++l) {
      std::vector<GroupRecord> ga, gb;
      a.level(l).SnapshotGroups(&ga);
      b.level(l).SnapshotGroups(&gb);
      ASSERT_EQ(ga.size(), gb.size()) << "copy " << c << " level " << l;
      for (size_t i = 0; i < ga.size(); ++i) {
        ASSERT_EQ(ga[i].id, gb[i].id);
        ASSERT_EQ(ga[i].latest_stamp, gb[i].latest_stamp);
        ASSERT_EQ(ga[i].latest_index, gb[i].latest_index);
        ASSERT_EQ(ga[i].rep, gb[i].rep);
        ASSERT_EQ(ga[i].latest, gb[i].latest);
      }
    }
  }
}

TEST(F0SwTest, SerialExplicitStampsComposeWithStampedFeed) {
  // Mixed serial Insert(p, stamp) and FeedStamped ingestion (with a
  // Drain between mode switches) keeps one monotone stamp sequence —
  // serial inserts raise the pipeline's stamp watermark — and stays
  // bit-identical to the pure serial run.
  F0SwOptions opts;
  opts.sampler = BaseOptions(1, 1.0, 18);
  opts.window = 256;
  opts.copies = 3;
  std::vector<Point> points;
  std::vector<int64_t> stamps;
  int64_t t = 100;  // non-zero start: stamps never equal arrival indices
  for (int i = 0; i < 240; ++i) {
    points.push_back(Isolated(i % 40));
    t += 2 + (i % 5);
    stamps.push_back(t);
  }

  auto serial = F0EstimatorSW::Create(opts).value();
  for (size_t i = 0; i < points.size(); ++i) {
    serial.Insert(points[i], stamps[i]);
  }

  auto mixed = F0EstimatorSW::Create(opts).value();
  const Span<const Point> all(points);
  const Span<const int64_t> all_stamps(stamps);
  for (size_t i = 0; i < 60; ++i) mixed.Insert(points[i], stamps[i]);
  mixed.FeedStamped(all.subspan(60, 100), all_stamps.subspan(60, 100));
  mixed.Drain();
  EXPECT_EQ(mixed.copy_sampler(0).latest_stamp(), stamps[159]);
  mixed.Insert(points[160], stamps[160]);
  mixed.FeedOwnedStamped(
      std::vector<Point>(points.begin() + 161, points.end()),
      std::vector<int64_t>(stamps.begin() + 161, stamps.end()));
  mixed.Drain();

  EXPECT_DOUBLE_EQ(mixed.EstimateLatest(), serial.EstimateLatest());
  for (size_t c = 0; c < mixed.copies(); ++c) {
    const RobustL0SamplerSW& a = mixed.copy_sampler(c);
    const RobustL0SamplerSW& b = serial.copy_sampler(c);
    ASSERT_EQ(a.points_processed(), b.points_processed());
    ASSERT_EQ(a.latest_stamp(), b.latest_stamp());
    for (size_t l = 0; l < a.num_levels(); ++l) {
      std::vector<GroupRecord> ga, gb;
      a.level(l).SnapshotGroups(&ga);
      b.level(l).SnapshotGroups(&gb);
      ASSERT_EQ(ga.size(), gb.size()) << "copy " << c << " level " << l;
      for (size_t i = 0; i < ga.size(); ++i) {
        ASSERT_EQ(ga[i].id, gb[i].id);
        ASSERT_EQ(ga[i].latest_stamp, gb[i].latest_stamp);
        ASSERT_EQ(ga[i].latest_index, gb[i].latest_index);
      }
    }
  }
}

TEST(F0SwTest, RepetitionMedianIsExposed) {
  F0SwOptions opts;
  opts.sampler = BaseOptions(1, 1.0, 15);
  opts.window = 256;
  opts.copies = 8;
  opts.repetitions = 3;
  auto est = F0EstimatorSW::Create(opts).value();
  EXPECT_EQ(est.copies(), 8u);
  EXPECT_EQ(est.repetitions(), 3u);
  for (int i = 0; i < 100; ++i) est.Insert(Isolated(i), i);
  EXPECT_GT(est.EstimateLatest(), 0.0);
}

}  // namespace
}  // namespace rl0
