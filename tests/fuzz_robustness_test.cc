// Fuzz-style robustness tests: malformed external inputs (CSV text,
// snapshot blobs) must produce clean Status errors — never crashes or
// silent corruption — and extreme numeric inputs must not break the
// samplers' invariants.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "rl0/core/iw_sampler.h"
#include "rl0/core/snapshot.h"
#include "rl0/stream/csv.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

std::string RandomBytes(size_t n, Xoshiro256pp* rng) {
  std::string out(n, '\0');
  for (char& c : out) c = static_cast<char>((*rng)() & 0xFF);
  return out;
}

TEST(FuzzTest, CsvParserNeverCrashesOnRandomBytes) {
  Xoshiro256pp rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string garbage = RandomBytes(rng.NextBounded(200), &rng);
    std::istringstream in(garbage);
    const auto result = ParseCsvPoints(in);
    // Either parses (random bytes can form numbers) or errors — both fine.
    if (result.ok()) {
      for (const Point& p : result.value()) EXPECT_GE(p.dim(), 1u);
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(FuzzTest, CsvParserNeverCrashesOnPrintableGarbage) {
  Xoshiro256pp rng(2);
  const std::string alphabet = "0123456789.,-+eE #\nNaN()abc";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    for (size_t i = 0; i < rng.NextBounded(120); ++i) {
      text += alphabet[rng.NextBounded(alphabet.size())];
    }
    std::istringstream in(text);
    (void)ParseCsvPoints(in);  // must not crash
  }
}

TEST(FuzzTest, SnapshotRestoreNeverCrashesOnRandomBytes) {
  Xoshiro256pp rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string garbage = RandomBytes(rng.NextBounded(400), &rng);
    const auto result = RestoreSampler(garbage);
    EXPECT_FALSE(result.ok());  // random bytes can't pass the checksum
  }
}

TEST(FuzzTest, SnapshotRestoreNeverCrashesOnMutations) {
  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 1.0;
  opts.seed = 4;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  for (int i = 0; i < 30; ++i) {
    sampler.Insert(Point{10.0 * i, -5.0 * i});
  }
  std::string blob;
  ASSERT_TRUE(SnapshotSampler(sampler, &blob).ok());

  Xoshiro256pp rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    std::string mutated = blob;
    // 1-4 random byte mutations.
    const size_t mutations = 1 + rng.NextBounded(4);
    for (size_t m = 0; m < mutations; ++m) {
      mutated[rng.NextBounded(mutated.size())] =
          static_cast<char>(rng() & 0xFF);
    }
    const auto result = RestoreSampler(mutated);
    // The checksum rejects any actual change; mutations that happen to
    // rewrite a byte to its original value still restore fine.
    if (mutated == blob) {
      EXPECT_TRUE(result.ok());
    } else {
      EXPECT_FALSE(result.ok());
    }
  }
}

TEST(FuzzTest, SnapshotRestoreNeverCrashesOnTruncations) {
  SamplerOptions opts;
  opts.dim = 3;
  opts.alpha = 0.5;
  opts.seed = 6;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  for (int i = 0; i < 10; ++i) {
    sampler.Insert(Point{5.0 * i, 0.0, 1.0});
  }
  std::string blob;
  ASSERT_TRUE(SnapshotSampler(sampler, &blob).ok());
  for (size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(RestoreSampler(blob.substr(0, len)).ok()) << len;
  }
}

TEST(FuzzTest, ExtremeCoordinatesKeepInvariants) {
  Xoshiro256pp rng(7);
  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 1.0;
  opts.seed = 8;
  opts.accept_cap = 10;
  opts.expected_stream_length = 4096;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  const double magnitudes[] = {1e-9, 1.0, 1e3, 1e9, 1e12};
  for (int i = 0; i < 2000; ++i) {
    const double mag = magnitudes[rng.NextBounded(5)];
    Point p{mag * (rng.NextDouble() * 2 - 1), mag * (rng.NextDouble() * 2 - 1)};
    sampler.Insert(p);
    ASSERT_LE(sampler.accept_size(), 10u);
    ASSERT_GE(sampler.accept_size(), 1u);
  }
  Xoshiro256pp qrng(9);
  EXPECT_TRUE(sampler.Sample(&qrng).has_value());
}

TEST(FuzzTest, RandomStreamsNeverViolateDefinition22) {
  Xoshiro256pp rng(10);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    SamplerOptions opts;
    opts.dim = 2;
    opts.alpha = 1.0;
    opts.seed = 100 + seed;
    opts.accept_cap = 8;
    opts.expected_stream_length = 1024;
    auto sampler = RobustL0SamplerIW::Create(opts).value();
    // Clustered random walk: a mix of near-duplicates and far jumps.
    Point current{0.0, 0.0};
    for (int i = 0; i < 500; ++i) {
      if (rng.NextBernoulli(0.7)) {
        current[0] += 0.3 * (rng.NextDouble() - 0.5);
        current[1] += 0.3 * (rng.NextDouble() - 0.5);
      } else {
        current[0] = 1e4 * (rng.NextDouble() - 0.5);
        current[1] = 1e4 * (rng.NextDouble() - 0.5);
      }
      sampler.Insert(current);
    }
    std::vector<uint64_t> adj;
    for (const SampleItem& item : sampler.AcceptedRepresentatives()) {
      ASSERT_TRUE(sampler.hasher().SampledAtLevel(
          sampler.grid().CellKeyOf(item.point), sampler.level()));
    }
    for (const SampleItem& item : sampler.RejectedRepresentatives()) {
      ASSERT_FALSE(sampler.hasher().SampledAtLevel(
          sampler.grid().CellKeyOf(item.point), sampler.level()));
      sampler.grid().AdjacentCells(item.point, opts.alpha, &adj);
      bool near = false;
      for (uint64_t key : adj) {
        near = near || sampler.hasher().SampledAtLevel(key, sampler.level());
      }
      ASSERT_TRUE(near);
    }
  }
}

}  // namespace
}  // namespace rl0
