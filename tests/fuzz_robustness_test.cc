// Fuzz-style robustness tests: malformed external inputs (CSV text,
// snapshot blobs) must produce clean Status errors — never crashes or
// silent corruption — and extreme numeric inputs must not break the
// samplers' invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "rl0/baseline/legacy_sw_sampler.h"
#include "rl0/core/checkpoint.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/core/snapshot.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/serve/protocol.h"
#include "rl0/stream/csv.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

std::string RandomBytes(size_t n, Xoshiro256pp* rng) {
  std::string out(n, '\0');
  for (char& c : out) c = static_cast<char>((*rng)() & 0xFF);
  return out;
}

TEST(FuzzTest, CsvParserNeverCrashesOnRandomBytes) {
  Xoshiro256pp rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string garbage = RandomBytes(rng.NextBounded(200), &rng);
    std::istringstream in(garbage);
    const auto result = ParseCsvPoints(in);
    // Either parses (random bytes can form numbers) or errors — both fine.
    if (result.ok()) {
      for (const Point& p : result.value()) EXPECT_GE(p.dim(), 1u);
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(FuzzTest, CsvParserNeverCrashesOnPrintableGarbage) {
  Xoshiro256pp rng(2);
  const std::string alphabet = "0123456789.,-+eE #\nNaN()abc";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    for (size_t i = 0; i < rng.NextBounded(120); ++i) {
      text += alphabet[rng.NextBounded(alphabet.size())];
    }
    std::istringstream in(text);
    (void)ParseCsvPoints(in);  // must not crash
  }
}

TEST(FuzzTest, SnapshotRestoreNeverCrashesOnRandomBytes) {
  Xoshiro256pp rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string garbage = RandomBytes(rng.NextBounded(400), &rng);
    const auto result = RestoreSampler(garbage);
    EXPECT_FALSE(result.ok());  // random bytes can't pass the checksum
  }
}

TEST(FuzzTest, SnapshotRestoreNeverCrashesOnMutations) {
  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 1.0;
  opts.seed = 4;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  for (int i = 0; i < 30; ++i) {
    sampler.Insert(Point{10.0 * i, -5.0 * i});
  }
  std::string blob;
  ASSERT_TRUE(SnapshotSampler(sampler, &blob).ok());

  Xoshiro256pp rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    std::string mutated = blob;
    // 1-4 random byte mutations.
    const size_t mutations = 1 + rng.NextBounded(4);
    for (size_t m = 0; m < mutations; ++m) {
      mutated[rng.NextBounded(mutated.size())] =
          static_cast<char>(rng() & 0xFF);
    }
    const auto result = RestoreSampler(mutated);
    // The checksum rejects any actual change; mutations that happen to
    // rewrite a byte to its original value still restore fine.
    if (mutated == blob) {
      EXPECT_TRUE(result.ok());
    } else {
      EXPECT_FALSE(result.ok());
    }
  }
}

TEST(FuzzTest, SnapshotRestoreNeverCrashesOnTruncations) {
  SamplerOptions opts;
  opts.dim = 3;
  opts.alpha = 0.5;
  opts.seed = 6;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  for (int i = 0; i < 10; ++i) {
    sampler.Insert(Point{5.0 * i, 0.0, 1.0});
  }
  std::string blob;
  ASSERT_TRUE(SnapshotSampler(sampler, &blob).ok());
  for (size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(RestoreSampler(blob.substr(0, len)).ok()) << len;
  }
}

TEST(FuzzTest, SwSnapshotRestoreNeverCrashesOnRandomBytes) {
  Xoshiro256pp rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string garbage = RandomBytes(rng.NextBounded(400), &rng);
    EXPECT_FALSE(RestoreSamplerSW(garbage).ok());
  }
}

TEST(FuzzTest, SwSnapshotRestoreNeverCrashesOnMutationsOrTruncations) {
  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 1.0;
  opts.seed = 32;
  opts.random_representative = true;
  auto sampler = RobustL0SamplerSW::Create(opts, 64).value();
  for (int i = 0; i < 120; ++i) {
    sampler.Insert(Point{10.0 * (i % 25), -5.0 * (i % 25)}, i);
  }
  std::string blob;
  ASSERT_TRUE(SnapshotSamplerSW(sampler, &blob).ok());

  Xoshiro256pp rng(33);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = blob;
    const size_t mutations = 1 + rng.NextBounded(4);
    for (size_t m = 0; m < mutations; ++m) {
      mutated[rng.NextBounded(mutated.size())] =
          static_cast<char>(rng() & 0xFF);
    }
    // Either the checksum/structural checks reject it, or the mutation
    // was payload-neutral — never a crash or corrupt sampler.
    auto restored = RestoreSamplerSW(mutated);
    if (restored.ok()) {
      Xoshiro256pp qrng(34);
      (void)restored.value().SampleLatest(&qrng);
    }
  }
  for (size_t len = 0; len < blob.size(); len += 7) {
    EXPECT_FALSE(RestoreSamplerSW(blob.substr(0, len)).ok()) << len;
  }
}

/// Random SW stream: random group revisits with random stamp gaps (gaps
/// regularly exceed the window, straddling expiry) — the fuzz surface of
/// the window-semantics battery.
struct SwFuzzStream {
  std::vector<Point> points;
  std::vector<int64_t> stamps;
};

SwFuzzStream RandomSwStream(size_t n, size_t groups, Xoshiro256pp* rng) {
  SwFuzzStream stream;
  int64_t stamp = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t g = rng->NextBounded(groups);
    stream.points.push_back(
        Point{10.0 * static_cast<double>(g) + 0.3 * (rng->NextDouble() - 0.5)});
    // Mostly dense stamps, occasionally a jump past several windows.
    stamp += rng->NextBounded(50) == 0
                 ? static_cast<int64_t>(rng->NextBounded(400))
                 : static_cast<int64_t>(rng->NextBounded(3));
    stream.stamps.push_back(stamp);
  }
  return stream;
}

TEST(FuzzTest, SwRandomStreamsLegacyDifferentialAtRateOne) {
  // The flat-index refactor against the node-based legacy hierarchy on
  // random streams, windows and group counts — bit-identical state at
  // rate 1, including streams whose stamp jumps empty whole windows.
  Xoshiro256pp rng(35);
  for (int trial = 0; trial < 25; ++trial) {
    SamplerOptions opts;
    opts.dim = 1;
    opts.alpha = 1.0;
    opts.seed = 3500 + trial;
    opts.accept_cap = 1 << 20;  // rate 1
    opts.expected_stream_length = 1 << 12;
    const int64_t window = 8 + static_cast<int64_t>(rng.NextBounded(120));
    const SwFuzzStream stream =
        RandomSwStream(300, 5 + rng.NextBounded(40), &rng);

    auto flat = RobustL0SamplerSW::Create(opts, window).value();
    auto legacy = LegacySwSampler::Create(opts, window).value();
    for (size_t i = 0; i < stream.points.size(); ++i) {
      flat.Insert(stream.points[i], stream.stamps[i]);
      legacy.Insert(stream.points[i], stream.stamps[i]);
    }
    ASSERT_EQ(flat.num_levels(), legacy.num_levels());
    for (size_t l = 0; l < flat.num_levels(); ++l) {
      std::vector<GroupRecord> a, b;
      flat.level(l).SnapshotGroups(&a);
      legacy.level(l).SnapshotGroups(&b);
      const auto by_id = [](const GroupRecord& x, const GroupRecord& y) {
        return x.id < y.id;
      };
      std::sort(a.begin(), a.end(), by_id);
      std::sort(b.begin(), b.end(), by_id);
      ASSERT_EQ(a.size(), b.size()) << "trial " << trial << " level " << l;
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].id, b[i].id);
        ASSERT_EQ(a[i].rep_index, b[i].rep_index);
        ASSERT_EQ(a[i].accepted, b[i].accepted);
        ASSERT_EQ(a[i].latest_stamp, b[i].latest_stamp);
        ASSERT_EQ(a[i].latest_index, b[i].latest_index);
        ASSERT_EQ(a[i].rep, b[i].rep);
        ASSERT_EQ(a[i].latest, b[i].latest);
      }
    }
  }
}

TEST(FuzzTest, SwRandomStreamsKeepWindowInvariants) {
  // At any cap and window, every tracked group's latest stamp stays
  // inside the window and a sample (when one exists) is a window point.
  Xoshiro256pp rng(36);
  for (int trial = 0; trial < 25; ++trial) {
    SamplerOptions opts;
    opts.dim = 1;
    opts.alpha = 1.0;
    opts.seed = 3600 + trial;
    opts.accept_cap = 4 + rng.NextBounded(16);
    opts.expected_stream_length = 1 << 12;
    const int64_t window = 8 + static_cast<int64_t>(rng.NextBounded(120));
    const SwFuzzStream stream =
        RandomSwStream(400, 5 + rng.NextBounded(60), &rng);

    auto sampler = RobustL0SamplerSW::Create(opts, window).value();
    Xoshiro256pp qrng(37);
    for (size_t i = 0; i < stream.points.size(); ++i) {
      sampler.Insert(stream.points[i], stream.stamps[i]);
      if (i % 16 != 15) continue;
      const int64_t now = stream.stamps[i];
      for (size_t l = 0; l < sampler.num_levels(); ++l) {
        std::vector<GroupRecord> groups;
        sampler.level(l).SnapshotGroups(&groups);
        for (const GroupRecord& g : groups) {
          ASSERT_GT(g.latest_stamp, now - window);
          ASSERT_LE(g.latest_stamp, now);
          ASSERT_LE(g.rep_index, g.latest_index);
        }
      }
      const auto sample = sampler.Sample(now, &qrng);
      ASSERT_TRUE(sample.has_value());  // the newest point is in-window
    }
  }
}

TEST(FuzzTest, DupFilterStaysIdenticalThroughRefilterWaves) {
  // The duplicate-suppression front-end against its invalidation events,
  // IW half: tiny accept caps force frequent rate halvings, so Refilter
  // removal sweeps and Compact repacks keep bumping the rep-table
  // generation while exact repeats keep re-arming the cache. Every trial
  // runs filter-on and filter-off side by side; any stale replay (a
  // cached slot surviving a refilter it shouldn't) diverges the pair.
  Xoshiro256pp rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    SamplerOptions opts;
    opts.dim = 2;
    opts.alpha = 1.0;
    opts.seed = 4100 + static_cast<uint64_t>(trial);
    opts.accept_cap = 4 + rng.NextBounded(12);
    opts.expected_stream_length = 2048;
    opts.random_representative = (trial % 2) == 0;
    SamplerOptions off_opts = opts;
    off_opts.dup_filter = false;
    auto on = RobustL0SamplerIW::Create(opts).value();
    auto off = RobustL0SamplerIW::Create(off_opts).value();

    const size_t groups = 4 + rng.NextBounded(60);
    for (int i = 0; i < 600; ++i) {
      const double g = static_cast<double>(rng.NextBounded(groups));
      Point p{7.0 * g, -3.0 * g};
      if (rng.NextDouble() >= 0.7) {
        p[0] += 0.2 * (rng.NextDouble() - 0.5);
        p[1] += 0.2 * (rng.NextDouble() - 0.5);
      }
      on.Insert(p);
      off.Insert(p);
      if (i % 37 == 0) {
        ASSERT_EQ(on.level(), off.level()) << "trial " << trial;
        ASSERT_EQ(on.accept_size(), off.accept_size()) << "trial " << trial;
      }
    }
    const auto acc_on = on.AcceptedRepresentatives();
    const auto acc_off = off.AcceptedRepresentatives();
    ASSERT_EQ(acc_on.size(), acc_off.size()) << "trial " << trial;
    for (size_t i = 0; i < acc_on.size(); ++i) {
      ASSERT_EQ(acc_on[i].stream_index, acc_off[i].stream_index);
      ASSERT_EQ(acc_on[i].point, acc_off[i].point);
    }
  }
}

TEST(FuzzTest, SwDupFilterStaysIdenticalThroughExpiryAndSplitWaves) {
  // SW half of the invalidation fuzz: random windows and tiny caps mix
  // exact repeats with expiry waves (stamp jumps past whole windows,
  // triggering group-table Clear/Compact), splits (PromoteInto moving
  // groups between levels) and cascades — every event that must
  // invalidate a recorded descent. Filter-on vs filter-off state is
  // compared field-for-field across all levels at checkpoints.
  Xoshiro256pp rng(43);
  for (int trial = 0; trial < 15; ++trial) {
    SamplerOptions opts;
    opts.dim = 1;
    opts.alpha = 1.0;
    opts.seed = 4300 + static_cast<uint64_t>(trial);
    opts.accept_cap = 4 + rng.NextBounded(16);
    opts.expected_stream_length = 1 << 12;
    opts.random_representative = (trial % 2) == 0;
    SamplerOptions off_opts = opts;
    off_opts.dup_filter = false;
    const int64_t window = 8 + static_cast<int64_t>(rng.NextBounded(120));
    auto on = RobustL0SamplerSW::Create(opts, window).value();
    auto off = RobustL0SamplerSW::Create(off_opts, window).value();

    const size_t groups = 5 + rng.NextBounded(40);
    int64_t stamp = 0;
    for (int i = 0; i < 400; ++i) {
      Point p{10.0 * static_cast<double>(rng.NextBounded(groups))};
      if (rng.NextDouble() >= 0.8) p[0] += 0.3 * (rng.NextDouble() - 0.5);
      stamp += rng.NextBounded(50) == 0
                   ? static_cast<int64_t>(rng.NextBounded(400))
                   : static_cast<int64_t>(rng.NextBounded(3));
      on.Insert(p, stamp);
      off.Insert(p, stamp);
      if (i % 61 != 60 && i != 399) continue;
      ASSERT_EQ(on.error_count(), off.error_count()) << "trial " << trial;
      for (size_t l = 0; l < on.num_levels(); ++l) {
        std::vector<GroupRecord> a, b;
        on.level(l).SnapshotGroups(&a);
        off.level(l).SnapshotGroups(&b);
        const auto by_id = [](const GroupRecord& x, const GroupRecord& y) {
          return x.id < y.id;
        };
        std::sort(a.begin(), a.end(), by_id);
        std::sort(b.begin(), b.end(), by_id);
        ASSERT_EQ(a.size(), b.size())
            << "trial " << trial << " level " << l << " step " << i;
        for (size_t j = 0; j < a.size(); ++j) {
          ASSERT_EQ(a[j].id, b[j].id);
          ASSERT_EQ(a[j].rep_index, b[j].rep_index);
          ASSERT_EQ(a[j].accepted, b[j].accepted);
          ASSERT_EQ(a[j].latest_stamp, b[j].latest_stamp);
          ASSERT_EQ(a[j].latest_index, b[j].latest_index);
          ASSERT_EQ(a[j].rep, b[j].rep);
          ASSERT_EQ(a[j].latest, b[j].latest);
          ASSERT_EQ(a[j].reservoir.size(), b[j].reservoir.size());
          for (size_t r = 0; r < a[j].reservoir.size(); ++r) {
            ASSERT_EQ(a[j].reservoir[r].priority, b[j].reservoir[r].priority);
            ASSERT_EQ(a[j].reservoir[r].stream_index,
                      b[j].reservoir[r].stream_index);
            ASSERT_EQ(a[j].reservoir[r].point, b[j].reservoir[r].point);
          }
        }
      }
    }
  }
}

TEST(FuzzTest, DeltaFoldNeverCrashesOnMalformedInputs) {
  // ApplySamplerDelta / ApplySamplerDeltaSW over random bytes, byte
  // mutations of both operands, and truncations: a clean Status every
  // time, and an accepted fold must itself restore.
  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 1.0;
  opts.seed = 51;
  opts.accept_cap = 8;
  opts.expected_stream_length = 2048;

  auto iw = RobustL0SamplerIW::Create(opts).value();
  for (int i = 0; i < 150; ++i) iw.Insert(Point{9.0 * (i % 20), 1.0 * i});
  std::string iw_base;
  ASSERT_TRUE(SnapshotSamplerFull(&iw, &iw_base).ok());
  for (int i = 0; i < 150; ++i) iw.Insert(Point{9.0 * (i % 31), -2.0 * i});
  std::string iw_delta;
  ASSERT_TRUE(
      SnapshotSamplerDelta(&iw, SnapshotChainChecksum(iw_base), &iw_delta)
          .ok());

  auto sw = RobustL0SamplerSW::Create(opts, 64).value();
  for (int i = 0; i < 150; ++i) sw.Insert(Point{9.0 * (i % 20), 1.0 * i}, i);
  std::string sw_base;
  ASSERT_TRUE(SnapshotSamplerFullSW(&sw, &sw_base).ok());
  for (int i = 150; i < 300; ++i) {
    sw.Insert(Point{9.0 * (i % 31), -2.0 * i}, i);
  }
  std::string sw_delta;
  ASSERT_TRUE(
      SnapshotSamplerDeltaSW(&sw, SnapshotChainChecksum(sw_base), &sw_delta)
          .ok());

  Xoshiro256pp rng(52);
  for (int trial = 0; trial < 400; ++trial) {
    std::string out;
    (void)ApplySamplerDelta(iw_base, RandomBytes(rng.NextBounded(300), &rng),
                            &out);
    (void)ApplySamplerDeltaSW(sw_base, RandomBytes(rng.NextBounded(300), &rng),
                              &out);
  }
  const auto fuzz_pair = [&rng](const std::string& base,
                                const std::string& delta, bool sliding) {
    for (int trial = 0; trial < 400; ++trial) {
      std::string mut_base = base;
      std::string mut_delta = delta;
      std::string& victim = trial % 2 == 0 ? mut_delta : mut_base;
      const size_t mutations = 1 + rng.NextBounded(4);
      for (size_t m = 0; m < mutations; ++m) {
        victim[rng.NextBounded(victim.size())] =
            static_cast<char>(rng() & 0xFF);
      }
      std::string out;
      const Status status = sliding
                                ? ApplySamplerDeltaSW(mut_base, mut_delta, &out)
                                : ApplySamplerDelta(mut_base, mut_delta, &out);
      if (status.ok()) {
        // Mutation-neutral (or checksum-consistent): the fold must be a
        // restorable full blob.
        EXPECT_TRUE(sliding ? RestoreSamplerSW(out).ok()
                            : RestoreSampler(out).ok());
      }
    }
    for (size_t len = 0; len < delta.size(); len += 5) {
      std::string out;
      const std::string cut = delta.substr(0, len);
      EXPECT_FALSE((sliding ? ApplySamplerDeltaSW(base, cut, &out)
                            : ApplySamplerDelta(base, cut, &out))
                       .ok())
          << len;
    }
  };
  fuzz_pair(iw_base, iw_delta, /*sliding=*/false);
  fuzz_pair(sw_base, sw_delta, /*sliding=*/true);
}

TEST(FuzzTest, JournalReaderNeverCrashesAndPrefixIsIdempotent) {
  // ReadJournal over random bytes, mutations and every truncation: a
  // clean Status, valid_bytes never past the input, and re-reading the
  // reported valid prefix must reproduce it exactly.
  std::string journal;
  JournalWriter writer(&journal, 2);
  Xoshiro256pp rng(53);
  uint64_t index = 0;
  for (int r = 0; r < 12; ++r) {
    std::vector<Point> points;
    std::vector<int64_t> stamps;
    for (size_t i = 0; i < 1 + rng.NextBounded(9); ++i) {
      points.push_back(Point{rng.NextDouble(), rng.NextDouble()});
      stamps.push_back(static_cast<int64_t>(3 * index + i));
    }
    switch (r % 3) {
      case 0:
        writer.AppendPoints(points, index);
        index += points.size();
        break;
      case 1:
        writer.AppendStamped(points, stamps, index);
        index += points.size();
        break;
      default:
        writer.AppendWatermark(static_cast<int64_t>(3 * index), index);
        break;
    }
  }

  for (int trial = 0; trial < 400; ++trial) {
    JournalContents contents;
    (void)ReadJournal(RandomBytes(rng.NextBounded(400), &rng), &contents);
  }
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = journal;
    const size_t mutations = 1 + rng.NextBounded(4);
    for (size_t m = 0; m < mutations; ++m) {
      mutated[rng.NextBounded(mutated.size())] =
          static_cast<char>(rng() & 0xFF);
    }
    JournalContents contents;
    const Status status = ReadJournal(mutated, &contents);
    if (!status.ok()) continue;  // header mutation: clean reject
    ASSERT_LE(contents.valid_bytes, mutated.size());
    JournalContents reread;
    ASSERT_TRUE(
        ReadJournal(mutated.substr(0, contents.valid_bytes), &reread).ok());
    EXPECT_EQ(reread.valid_bytes, contents.valid_bytes);
    EXPECT_EQ(reread.records.size(), contents.records.size());
  }
  for (size_t len = 0; len <= journal.size(); ++len) {
    JournalContents contents;
    const Status status = ReadJournal(journal.substr(0, len), &contents);
    if (len >= 20) {
      ASSERT_TRUE(status.ok()) << len;  // torn tails are never errors
      ASSERT_LE(contents.valid_bytes, len);
    }
  }
}

TEST(FuzzTest, PoolRecoveryNeverCrashesOnMalformedInputs) {
  // FoldPoolDelta / RecoverPool over random bytes and mutated
  // checkpoints and journals: a clean Status or a usable pool, never a
  // crash. Journal mutations in particular must degrade to a shorter
  // replay (torn-tail semantics), not corruption.
  SamplerOptions opts;
  opts.dim = 1;
  opts.alpha = 1.0;
  opts.seed = 54;
  opts.accept_cap = 8;
  opts.expected_stream_length = 2048;
  auto pool = ShardedSwSamplerPool::Create(opts, 97, 2).value();
  std::string journal;
  JournalWriter writer(&journal, opts.dim);
  AttachJournal(&pool, &writer);

  Xoshiro256pp rng(55);
  std::vector<Point> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back(Point{10.0 * static_cast<double>(rng.NextBounded(25))});
  }
  pool.Feed(Span<const Point>(points.data(), 250));
  pool.Drain();
  std::string base;
  ASSERT_TRUE(CheckpointPool(&pool, writer.next_seq(), &base).ok());
  pool.Feed(Span<const Point>(points.data() + 250, 250));
  pool.Drain();
  std::string delta;
  ASSERT_TRUE(CheckpointPoolDelta(&pool, base, writer.next_seq(), &delta).ok());
  std::string folded;
  ASSERT_TRUE(FoldPoolDelta(base, delta, &folded).ok());

  for (int trial = 0; trial < 200; ++trial) {
    const std::string garbage = RandomBytes(rng.NextBounded(400), &rng);
    std::string out;
    (void)FoldPoolDelta(base, garbage, &out);
    EXPECT_FALSE(RecoverPool(garbage, journal).ok());
  }
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = folded;
    const size_t mutations = 1 + rng.NextBounded(4);
    for (size_t m = 0; m < mutations; ++m) {
      mutated[rng.NextBounded(mutated.size())] =
          static_cast<char>(rng() & 0xFF);
    }
    auto recovered = RecoverPool(mutated, journal);
    if (mutated == folded) {
      EXPECT_TRUE(recovered.ok());
    } else {
      EXPECT_FALSE(recovered.ok());
    }
  }
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = journal;
    const size_t mutations = 1 + rng.NextBounded(4);
    for (size_t m = 0; m < mutations; ++m) {
      mutated[rng.NextBounded(mutated.size())] =
          static_cast<char>(rng() & 0xFF);
    }
    auto recovered = RecoverPool(folded, mutated);
    if (recovered.ok()) {
      Xoshiro256pp qrng(56);
      (void)recovered.value().SampleLatest(&qrng);
      EXPECT_LE(recovered.value().points_processed(), points.size());
    }
  }
  for (size_t len = 0; len <= journal.size(); len += 3) {
    auto recovered = RecoverPool(folded, journal.substr(0, len));
    ASSERT_TRUE(recovered.ok()) << len;  // torn tails always recover
  }
}

TEST(FuzzTest, ExtremeCoordinatesKeepInvariants) {
  Xoshiro256pp rng(7);
  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 1.0;
  opts.seed = 8;
  opts.accept_cap = 10;
  opts.expected_stream_length = 4096;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  const double magnitudes[] = {1e-9, 1.0, 1e3, 1e9, 1e12};
  for (int i = 0; i < 2000; ++i) {
    const double mag = magnitudes[rng.NextBounded(5)];
    Point p{mag * (rng.NextDouble() * 2 - 1), mag * (rng.NextDouble() * 2 - 1)};
    sampler.Insert(p);
    ASSERT_LE(sampler.accept_size(), 10u);
    ASSERT_GE(sampler.accept_size(), 1u);
  }
  Xoshiro256pp qrng(9);
  EXPECT_TRUE(sampler.Sample(&qrng).has_value());
}

TEST(FuzzTest, RandomStreamsNeverViolateDefinition22) {
  Xoshiro256pp rng(10);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    SamplerOptions opts;
    opts.dim = 2;
    opts.alpha = 1.0;
    opts.seed = 100 + seed;
    opts.accept_cap = 8;
    opts.expected_stream_length = 1024;
    auto sampler = RobustL0SamplerIW::Create(opts).value();
    // Clustered random walk: a mix of near-duplicates and far jumps.
    Point current{0.0, 0.0};
    for (int i = 0; i < 500; ++i) {
      if (rng.NextBernoulli(0.7)) {
        current[0] += 0.3 * (rng.NextDouble() - 0.5);
        current[1] += 0.3 * (rng.NextDouble() - 0.5);
      } else {
        current[0] = 1e4 * (rng.NextDouble() - 0.5);
        current[1] = 1e4 * (rng.NextDouble() - 0.5);
      }
      sampler.Insert(current);
    }
    std::vector<uint64_t> adj;
    for (const SampleItem& item : sampler.AcceptedRepresentatives()) {
      ASSERT_TRUE(sampler.hasher().SampledAtLevel(
          sampler.grid().CellKeyOf(item.point), sampler.level()));
    }
    for (const SampleItem& item : sampler.RejectedRepresentatives()) {
      ASSERT_FALSE(sampler.hasher().SampledAtLevel(
          sampler.grid().CellKeyOf(item.point), sampler.level()));
      sampler.grid().AdjacentCells(item.point, opts.alpha, &adj);
      bool near = false;
      for (uint64_t key : adj) {
        near = near || sampler.hasher().SampledAtLevel(key, sampler.level());
      }
      ASSERT_TRUE(near);
    }
  }
}

// ------------------------- rl0_serve line protocol (serve/protocol.h)

/// Runs arbitrary bytes through the server's decode→parse path exactly
/// as a session reader would: every byte sequence must yield lines and
/// oversize notices, every line a Command or a clean error — never a
/// crash. Returns the number of complete lines seen.
size_t DecodeAndParseAll(const std::string& wire, size_t max_line,
                         Xoshiro256pp* rng) {
  serve::LineDecoder decoder(max_line);
  // Random split points exercise partial-arrival reassembly.
  size_t offset = 0;
  while (offset < wire.size()) {
    const size_t n = std::min<size_t>(wire.size() - offset,
                                      1 + rng->NextBounded(97));
    decoder.Append(wire.data() + offset, n);
    offset += n;
  }
  size_t lines = 0;
  std::string line;
  for (;;) {
    const auto event = decoder.Next(&line);
    if (event == serve::LineDecoder::Event::kNone) break;
    if (event == serve::LineDecoder::Event::kOversized) continue;
    ++lines;
    const auto parsed = serve::ParseCommand(line);
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.status().message().empty()) << line;
    }
  }
  return lines;
}

TEST(FuzzTest, ServeProtocolNeverCrashesOnRandomBytes) {
  Xoshiro256pp rng(41);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string wire = RandomBytes(rng.NextBounded(400), &rng);
    DecodeAndParseAll(wire, 64, &rng);
  }
}

TEST(FuzzTest, ServeProtocolNeverCrashesOnProtocolShapedGarbage) {
  // Garbage built from real protocol vocabulary: verbs, key=value
  // fragments, stamps, numbers — far likelier to reach deep parser
  // branches than raw bytes.
  Xoshiro256pp rng(43);
  const char* words[] = {
      "CREATE",   "FEED",      "FEEDSTAMPED", "SAMPLE",  "SUBSCRIBE",
      "STATS",    "FLUSH",     "CLOSE",       "QUIT",    "PING",
      "t1",       "dim=",      "alpha=",      "window=", "mode=",
      "seq",      "time",      "late",        "every=",  "q=",
      "seed=",    "threshold=", "1,2",        "3.5,4.5", "10@1,2",
      "@",        "=",         "1e308",       "-1e309",  "nan",
      "inf",      "0x10",      "18446744073709551616",   ",,",
      "1,",       ",1",        "@@",          "-",       "digest",
      "f0",       "churn",     "\r",          "lateness=",
  };
  for (int trial = 0; trial < 500; ++trial) {
    std::string wire;
    const size_t tokens = 1 + rng.NextBounded(40);
    for (size_t i = 0; i < tokens; ++i) {
      wire += words[rng.NextBounded(sizeof(words) / sizeof(words[0]))];
      wire += rng.NextBernoulli(0.3) ? "\n" : " ";
    }
    wire += "\n";
    DecodeAndParseAll(wire, 256, &rng);
  }
}

TEST(FuzzTest, ServeProtocolSurvivesTruncatedAndMutatedValidCommands) {
  Xoshiro256pp rng(47);
  const std::string valid[] = {
      "CREATE t dim=3 alpha=0.5 window=100 mode=late lateness=10 "
      "shards=2 seed=9 metric=l1 m=1000 k=2 reservoir=1 filter=0",
      "FEED t 1.5,2.5,3 4,5,6 7,8,9",
      "FEEDSTAMPED t 10@1,2,3 12@4,5,6 15@7,8,9",
      "SAMPLE t q=3 seed=17",
      "SUBSCRIBE t churn every=25 threshold=0.125",
      "UNSUBSCRIBE t 7",
  };
  for (int trial = 0; trial < 600; ++trial) {
    std::string line = valid[rng.NextBounded(6)];
    // Truncate, splice or flip a few bytes.
    if (rng.NextBernoulli(0.5)) {
      line.resize(rng.NextBounded(line.size() + 1));
    }
    const size_t flips = rng.NextBounded(4);
    for (size_t f = 0; f < flips && !line.empty(); ++f) {
      line[rng.NextBounded(line.size())] =
          static_cast<char>(rng() & 0x7F);
    }
    const auto parsed = serve::ParseCommand(line);
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.status().message().empty()) << line;
    }
  }
}

TEST(FuzzTest, ServeDecoderGiantTokensStayBounded) {
  // Multi-megabyte single "lines" against a small cap: memory stays
  // bounded at the cap and the stream recovers at the next newline.
  Xoshiro256pp rng(53);
  serve::LineDecoder decoder(1024);
  std::string chunk(64 * 1024, 'a');
  for (int i = 0; i < 64; ++i) {
    decoder.Append(chunk.data(), chunk.size());
    ASSERT_LE(decoder.buffered_bytes(), 1025u);
  }
  decoder.Append("\nPING\n", 6);
  std::string line;
  size_t notices = 0;
  size_t lines = 0;
  for (;;) {
    const auto event = decoder.Next(&line);
    if (event == serve::LineDecoder::Event::kNone) break;
    if (event == serve::LineDecoder::Event::kOversized) {
      ++notices;
    } else {
      ++lines;
      EXPECT_EQ(line, "PING");
    }
  }
  EXPECT_EQ(notices, 1u);  // one notice for the whole 4MB run
  EXPECT_EQ(lines, 1u);
}

TEST(FuzzTest, ServeDecoderPipelinedRoundTripUnderRandomSplits) {
  // A long pipelined script of valid commands must survive any
  // re-chunking bit-for-bit: same lines, same order.
  Xoshiro256pp rng(59);
  std::vector<std::string> script;
  for (int i = 0; i < 200; ++i) {
    script.push_back("FEED t" + std::to_string(i % 7) + " " +
                     std::to_string(i) + "," + std::to_string(i + 1));
  }
  std::string wire;
  for (const std::string& s : script) wire += s + "\n";

  for (int trial = 0; trial < 20; ++trial) {
    serve::LineDecoder decoder(1 << 16);
    size_t offset = 0;
    while (offset < wire.size()) {
      const size_t n = std::min<size_t>(wire.size() - offset,
                                        1 + rng.NextBounded(31));
      decoder.Append(wire.data() + offset, n);
      offset += n;
    }
    std::string line;
    size_t index = 0;
    while (decoder.Next(&line) == serve::LineDecoder::Event::kLine) {
      ASSERT_LT(index, script.size());
      EXPECT_EQ(line, script[index]);
      ASSERT_TRUE(serve::ParseCommand(line).ok()) << line;
      ++index;
    }
    EXPECT_EQ(index, script.size());
  }
}

}  // namespace
}  // namespace rl0
