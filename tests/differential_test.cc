// Differential tests: the streaming sampler checked against the exact
// Ω(n)-space baselines across randomized configurations. Where the
// baseline computes ground truth, the sampler's observable state must be
// consistent with it — for any dimension, duplicate pattern, arrival
// order and seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "rl0/baseline/exact_partition.h"
#include "rl0/baseline/legacy_iw_sampler.h"
#include "rl0/baseline/naive_robust.h"
#include "rl0/core/f0_iw.h"
#include "rl0/core/heavy_hitters.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace rl0 {
namespace {

using Config = std::tuple<size_t /*dim*/, size_t /*groups*/,
                          uint64_t /*seed*/>;

class DifferentialSweep : public ::testing::TestWithParam<Config> {
 protected:
  NoisyDataset MakeData() const {
    const auto [dim, groups, seed] = GetParam();
    const BaseDataset base = RandomUniform(groups, dim, seed * 3 + 1);
    NearDupOptions nd;
    nd.max_dups = 4;
    nd.seed = seed * 3 + 2;
    return MakeNearDuplicates(base, nd);
  }

  SamplerOptions MakeOptions(const NoisyDataset& data) const {
    const auto [dim, groups, seed] = GetParam();
    SamplerOptions opts;
    opts.dim = dim;
    opts.alpha = data.alpha;
    opts.seed = seed * 3 + 3;
    opts.accept_cap = 10;
    opts.expected_stream_length = data.points.size();
    return opts;
  }
};

TEST_P(DifferentialSweep, AcceptedRepsAreNaiveReps) {
  const NoisyDataset data = MakeData();
  auto sampler = RobustL0SamplerIW::Create(MakeOptions(data)).value();
  NaiveRobustSampler naive(data.alpha);
  for (const Point& p : data.points) {
    sampler.Insert(p);
    naive.Insert(p);
  }
  std::set<uint64_t> naive_indices;
  for (const SampleItem& rep : naive.representatives()) {
    naive_indices.insert(rep.stream_index);
  }
  for (const SampleItem& item : sampler.AcceptedRepresentatives()) {
    EXPECT_TRUE(naive_indices.count(item.stream_index))
        << "accepted rep at stream position " << item.stream_index
        << " is not a naive first-point";
  }
}

TEST_P(DifferentialSweep, NaiveGroupCountMatchesGroundTruth) {
  const NoisyDataset data = MakeData();
  NaiveRobustSampler naive(data.alpha);
  for (const Point& p : data.points) naive.Insert(p);
  EXPECT_EQ(naive.num_groups(), data.num_groups);
  EXPECT_EQ(NaturalPartition(data.points, data.alpha).num_groups,
            data.num_groups);
}

TEST_P(DifferentialSweep, SampleIsAStreamPointOfASampledGroup) {
  const NoisyDataset data = MakeData();
  auto sampler = RobustL0SamplerIW::Create(MakeOptions(data)).value();
  for (const Point& p : data.points) sampler.Insert(p);
  Xoshiro256pp rng(std::get<2>(GetParam()));
  for (int q = 0; q < 20; ++q) {
    const auto sample = sampler.Sample(&rng);
    if (!sample.has_value()) continue;  // rare legitimate failure
    ASSERT_LT(sample->stream_index, data.points.size());
    EXPECT_EQ(sample->point, data.points[sample->stream_index]);
  }
}

// The tentpole refactor guarantee: the arena/flat-index sampler makes
// bit-identical accept/reject decisions to the pre-refactor map-based
// implementation (LegacyL0SamplerIW) for any fixed seed — same stored
// representatives, same stream positions, same final rate level.
TEST_P(DifferentialSweep, ArenaSamplerMatchesLegacyDecisions) {
  const NoisyDataset data = MakeData();
  const SamplerOptions opts = MakeOptions(data);
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  auto legacy = LegacyL0SamplerIW::Create(opts).value();
  for (const Point& p : data.points) {
    sampler.Insert(p);
    legacy.Insert(p);
  }
  EXPECT_EQ(sampler.level(), legacy.level());
  EXPECT_EQ(sampler.accept_size(), legacy.accept_size());
  EXPECT_EQ(sampler.reject_size(), legacy.reject_size());

  const auto expect_same = [](const std::vector<SampleItem>& got,
                              const std::vector<SampleItem>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].stream_index, want[i].stream_index);
      EXPECT_EQ(got[i].point, want[i].point);
    }
  };
  expect_same(sampler.AcceptedRepresentatives(),
              legacy.AcceptedRepresentatives());
  expect_same(sampler.RejectedRepresentatives(),
              legacy.RejectedRepresentatives());
}

TEST_P(DifferentialSweep, F0EstimateBracketsExactCount) {
  const NoisyDataset data = MakeData();
  F0Options opts;
  opts.sampler = MakeOptions(data);
  opts.sampler.accept_cap = 0;  // derive from epsilon instead
  opts.epsilon = 0.3;
  opts.copies = 5;
  auto est = F0EstimatorIW::Create(opts).value();
  for (const Point& p : data.points) est.Insert(p);
  const double truth = static_cast<double>(data.num_groups);
  EXPECT_GT(est.Estimate(), 0.5 * truth);
  EXPECT_LT(est.Estimate(), 1.5 * truth);
}

TEST_P(DifferentialSweep, HeavyHitterCountsBracketTruth) {
  const NoisyDataset data = MakeData();
  HeavyHittersOptions opts;
  opts.dim = data.dim;
  opts.alpha = data.alpha;
  opts.capacity = 2 * data.num_groups;  // exact regime
  opts.seed = std::get<2>(GetParam());
  auto hh = RobustHeavyHitters::Create(opts).value();
  for (const Point& p : data.points) hh.Insert(p);
  std::vector<uint64_t> truth(data.num_groups, 0);
  for (uint32_t g : data.group_of) ++truth[g];
  uint64_t tracked_total = 0;
  for (const auto& entry : hh.TopK(opts.capacity)) {
    EXPECT_EQ(entry.error, 0u);  // never evicted under 2n capacity
    EXPECT_EQ(entry.count, truth[data.group_of[entry.stream_index]]);
    tracked_total += entry.count;
  }
  EXPECT_EQ(tracked_total, data.points.size());
}

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  return "d" + std::to_string(std::get<0>(info.param)) + "_n" +
         std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialSweep,
    ::testing::Combine(::testing::Values<size_t>(2, 6, 15),
                       ::testing::Values<size_t>(25, 60),
                       ::testing::Values<uint64_t>(1, 2)),
    ConfigName);

}  // namespace
}  // namespace rl0
