// Tests for the Johnson–Lindenstrauss projection (Section 4, Remark 2):
// distance preservation, determinism, and the end-to-end pipeline of
// projecting a high-dimensional sparse stream before sampling.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rl0/baseline/exact_partition.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/geom/jl_projection.h"
#include "rl0/stream/generators.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

TEST(JlProjectionTest, CreateValidates) {
  EXPECT_FALSE(JlProjection::Create(0, 4, 1).ok());
  EXPECT_FALSE(JlProjection::Create(4, 0, 1).ok());
  EXPECT_TRUE(JlProjection::Create(100, 10, 1).ok());
}

TEST(JlProjectionTest, ShapesAndDeterminism) {
  auto proj = JlProjection::Create(50, 8, 7).value();
  EXPECT_EQ(proj.input_dim(), 50u);
  EXPECT_EQ(proj.output_dim(), 8u);
  Point p(50);
  for (size_t i = 0; i < 50; ++i) p[i] = static_cast<double>(i);
  const Point a = proj.Apply(p);
  EXPECT_EQ(a.dim(), 8u);
  auto proj2 = JlProjection::Create(50, 8, 7).value();
  EXPECT_EQ(a, proj2.Apply(p));
  auto proj3 = JlProjection::Create(50, 8, 8).value();
  EXPECT_FALSE(a == proj3.Apply(p));
}

TEST(JlProjectionTest, DimensionForFormula) {
  // k = ceil(8 ln m / eps^2).
  EXPECT_EQ(JlProjection::DimensionFor(1000, 0.5),
            static_cast<size_t>(std::ceil(8.0 * std::log(1000.0) / 0.25)));
  EXPECT_GT(JlProjection::DimensionFor(1000, 0.1),
            JlProjection::DimensionFor(1000, 0.5));
}

TEST(JlProjectionTest, LinearityAndZero) {
  auto proj = JlProjection::Create(10, 4, 3).value();
  EXPECT_EQ(proj.Apply(Point(10)), Point(4));  // zero maps to zero
  Point p(10), q(10);
  Xoshiro256pp rng(5);
  for (size_t i = 0; i < 10; ++i) {
    p[i] = rng.NextGaussian();
    q[i] = rng.NextGaussian();
  }
  const Point sum = proj.Apply(p + q);
  const Point expected = proj.Apply(p) + proj.Apply(q);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(sum[i], expected[i], 1e-9);
}

TEST(JlProjectionTest, PreservesPairwiseDistances) {
  // 60 random points in R^200 projected to the JL dimension for eps=0.4:
  // all pairwise distances within (1 ± 0.4) — the JL guarantee holds whp,
  // and the seed is fixed so the test is deterministic.
  const size_t n = 60, d = 200;
  const double eps = 0.4;
  const size_t k = JlProjection::DimensionFor(n, eps);
  auto proj = JlProjection::Create(d, k, 11).value();
  Xoshiro256pp rng(13);
  std::vector<Point> points;
  for (size_t i = 0; i < n; ++i) {
    Point p(d);
    for (size_t j = 0; j < d; ++j) p[j] = rng.NextGaussian();
    points.push_back(std::move(p));
  }
  const std::vector<Point> projected = proj.ApplyAll(points);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double original = Distance(points[i], points[j]);
      const double reduced = Distance(projected[i], projected[j]);
      EXPECT_GT(reduced, (1.0 - eps) * original) << i << "," << j;
      EXPECT_LT(reduced, (1.0 + eps) * original) << i << "," << j;
    }
  }
}

TEST(JlProjectionTest, EndToEndSamplingAfterProjection) {
  // Remark 2 pipeline: a d=120 stream whose groups have diameter ≤ α and
  // separation ≥ 4α (far below the d^1.5 requirement of Theorem 4.1 in
  // the ORIGINAL space once d is large). Project to k dimensions and run
  // the sampler with threshold (1+eps)·α in the projected space: group
  // structure must be preserved exactly.
  const size_t d = 120, groups = 25;
  const double alpha = 1.0, eps = 0.3;
  const BaseDataset centers = SeparatedCenters(groups, d, 6.0, 17);
  Xoshiro256pp rng(19);
  std::vector<Point> stream;
  std::vector<uint32_t> truth;
  for (size_t g = 0; g < groups; ++g) {
    for (int i = 0; i < 4; ++i) {
      Point p = centers.points[g];
      // Perturb within alpha/2 along a random axis pair.
      p[rng.NextBounded(d)] += 0.35 * (rng.NextDouble() - 0.5);
      p[rng.NextBounded(d)] += 0.35 * (rng.NextDouble() - 0.5);
      stream.push_back(std::move(p));
      truth.push_back(static_cast<uint32_t>(g));
    }
  }
  // DimensionFor's worst-case constant is conservative (410 dims for 100
  // points at eps=0.3); structured data like this separates at far lower
  // target dimensions in practice — use k = 20 ≪ d and verify exactness.
  const size_t k = 20;
  auto proj = JlProjection::Create(d, k, 23).value();
  const std::vector<Point> projected = proj.ApplyAll(stream);

  // Projected group structure matches the ground truth exactly.
  const Partition part = NaturalPartition(projected, (1.0 + eps) * alpha);
  EXPECT_EQ(part.num_groups, groups);

  SamplerOptions opts;
  opts.dim = k;
  opts.alpha = (1.0 + eps) * alpha;
  opts.seed = 29;
  opts.accept_cap = 1000;  // rate 1: every group resolved
  opts.expected_stream_length = stream.size();
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  for (const Point& p : projected) sampler.Insert(p);
  EXPECT_EQ(sampler.accept_size(), groups);
}

}  // namespace
}  // namespace rl0
