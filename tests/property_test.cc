// Property-style sweeps (TEST_P) asserting algorithm invariants across
// dimensions, grid regimes, hash families, duplicate distributions and
// seeds. These are the "never violated, whatever the configuration"
// guarantees: cap maintenance, non-empty accept set, Definition 2.2
// consistency, representative separation, and determinism.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "rl0/core/iw_sampler.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/stream/dataset.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace rl0 {
namespace {

using IwConfig = std::tuple<size_t /*dim*/, DupDistribution, HashFamily,
                            uint64_t /*seed*/>;

class IwInvariantSweep : public ::testing::TestWithParam<IwConfig> {
 protected:
  NoisyDataset MakeData() const {
    const auto [dim, distribution, family, seed] = GetParam();
    (void)family;
    const BaseDataset base = RandomUniform(70, dim, seed * 7 + 1);
    NearDupOptions nd;
    nd.distribution = distribution;
    nd.max_dups = 8;
    nd.seed = seed * 7 + 2;
    return MakeNearDuplicates(base, nd);
  }

  SamplerOptions MakeOptions(const NoisyDataset& data) const {
    const auto [dim, distribution, family, seed] = GetParam();
    (void)distribution;
    SamplerOptions opts;
    opts.dim = dim;
    opts.alpha = data.alpha;
    opts.seed = seed * 7 + 3;
    opts.side_mode = GridSideMode::kHighDim;
    opts.hash_family = family;
    opts.kwise_k = 16;
    opts.accept_cap = 10;
    opts.expected_stream_length = data.points.size();
    return opts;
  }
};

TEST_P(IwInvariantSweep, CapAndNonEmptinessHoldThroughout) {
  const NoisyDataset data = MakeData();
  auto sampler = RobustL0SamplerIW::Create(MakeOptions(data)).value();
  for (const Point& p : data.points) {
    sampler.Insert(p);
    ASSERT_LE(sampler.accept_size(), 10u);
    ASSERT_GE(sampler.accept_size(), 1u);
  }
}

TEST_P(IwInvariantSweep, Definition22ConsistencyAtEnd) {
  const NoisyDataset data = MakeData();
  const SamplerOptions opts = MakeOptions(data);
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  for (const Point& p : data.points) sampler.Insert(p);
  std::vector<uint64_t> adj;
  for (const SampleItem& item : sampler.AcceptedRepresentatives()) {
    ASSERT_TRUE(sampler.hasher().SampledAtLevel(
        sampler.grid().CellKeyOf(item.point), sampler.level()));
  }
  for (const SampleItem& item : sampler.RejectedRepresentatives()) {
    ASSERT_FALSE(sampler.hasher().SampledAtLevel(
        sampler.grid().CellKeyOf(item.point), sampler.level()));
    sampler.grid().AdjacentCells(item.point, opts.alpha, &adj);
    bool near = false;
    for (uint64_t key : adj) {
      near = near || sampler.hasher().SampledAtLevel(key, sampler.level());
    }
    ASSERT_TRUE(near);
  }
}

TEST_P(IwInvariantSweep, RepresentativesPairwiseSeparated) {
  const NoisyDataset data = MakeData();
  auto sampler = RobustL0SamplerIW::Create(MakeOptions(data)).value();
  for (const Point& p : data.points) sampler.Insert(p);
  std::vector<SampleItem> reps = sampler.AcceptedRepresentatives();
  const auto rej = sampler.RejectedRepresentatives();
  reps.insert(reps.end(), rej.begin(), rej.end());
  for (size_t i = 0; i < reps.size(); ++i) {
    for (size_t j = i + 1; j < reps.size(); ++j) {
      ASSERT_GT(Distance(reps[i].point, reps[j].point), data.alpha);
    }
  }
}

TEST_P(IwInvariantSweep, DeterministicReplay) {
  const NoisyDataset data = MakeData();
  const SamplerOptions opts = MakeOptions(data);
  auto a = RobustL0SamplerIW::Create(opts).value();
  auto b = RobustL0SamplerIW::Create(opts).value();
  for (const Point& p : data.points) {
    a.Insert(p);
    b.Insert(p);
  }
  ASSERT_EQ(a.level(), b.level());
  ASSERT_EQ(a.accept_size(), b.accept_size());
  ASSERT_EQ(a.reject_size(), b.reject_size());
  ASSERT_EQ(a.SpaceWords(), b.SpaceWords());
}

TEST_P(IwInvariantSweep, SampleBelongsToStream) {
  const NoisyDataset data = MakeData();
  auto sampler = RobustL0SamplerIW::Create(MakeOptions(data)).value();
  for (const Point& p : data.points) sampler.Insert(p);
  Xoshiro256pp rng(99);
  const auto sample = sampler.Sample(&rng);
  ASSERT_TRUE(sample.has_value());
  ASSERT_LT(sample->stream_index, data.points.size());
  ASSERT_EQ(sample->point, data.points[sample->stream_index]);
}

std::string IwConfigName(
    const ::testing::TestParamInfo<IwConfig>& info) {
  const auto [dim, distribution, family, seed] = info.param;
  std::string name = "d" + std::to_string(dim);
  name += distribution == DupDistribution::kUniform ? "_uni" : "_pl";
  name += family == HashFamily::kMix64 ? "_mix" : "_kwise";
  name += "_s" + std::to_string(seed);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IwInvariantSweep,
    ::testing::Combine(::testing::Values<size_t>(2, 5, 12),
                       ::testing::Values(DupDistribution::kUniform,
                                         DupDistribution::kPowerLaw),
                       ::testing::Values(HashFamily::kMix64,
                                         HashFamily::kKWisePoly),
                       ::testing::Values<uint64_t>(1, 2)),
    IwConfigName);

// ------------------------------------------------------- sliding window

using SwConfig = std::tuple<int64_t /*window*/, uint64_t /*seed*/>;

class SwInvariantSweep : public ::testing::TestWithParam<SwConfig> {};

TEST_P(SwInvariantSweep, AlwaysSampleableAndAliveWithinWindow) {
  const auto [window, seed] = GetParam();
  SamplerOptions opts;
  opts.dim = 1;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.accept_cap = 8;
  opts.expected_stream_length = 1 << 16;
  auto sampler = RobustL0SamplerSW::Create(opts, window).value();
  Xoshiro256pp rng(seed + 100);
  const int groups = 150;
  for (int i = 0; i < 600; ++i) {
    const int g = static_cast<int>(rng.NextBounded(groups));
    sampler.Insert(Point{10.0 * g + 0.2 * rng.NextDouble()}, i);
    Xoshiro256pp qrng(seed * 1000 + static_cast<uint64_t>(i));
    const auto sample = sampler.Sample(i, &qrng);
    ASSERT_TRUE(sample.has_value()) << "i=" << i;
    // Returned latest point must carry an in-window stream index.
    ASSERT_LE(sample->stream_index, static_cast<uint64_t>(i));
    ASSERT_GT(static_cast<int64_t>(sample->stream_index),
              static_cast<int64_t>(i) - window);
  }
}

TEST_P(SwInvariantSweep, LevelRatesAreNested) {
  const auto [window, seed] = GetParam();
  SamplerOptions opts;
  opts.dim = 1;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.accept_cap = 6;
  opts.expected_stream_length = 1 << 16;
  auto sampler = RobustL0SamplerSW::Create(opts, window).value();
  for (int i = 0; i < 500; ++i) {
    sampler.Insert(Point{10.0 * i}, i);
  }
  // Every accepted representative at level ℓ must have its cell sampled at
  // exactly its level (and by nestedness at all lower levels).
  for (size_t l = 0; l < sampler.num_levels(); ++l) {
    std::vector<GroupRecord> groups;
    sampler.level(l).SnapshotGroups(&groups);
    const SamplerContext& ctx = sampler.level(l).context();
    for (const GroupRecord& g : groups) {
      if (g.accepted) {
        ASSERT_TRUE(ctx.hasher.SampledAtLevel(g.rep_cell,
                                              static_cast<uint32_t>(l)));
        for (size_t lower = 0; lower < l; ++lower) {
          ASSERT_TRUE(ctx.hasher.SampledAtLevel(
              g.rep_cell, static_cast<uint32_t>(lower)));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SwInvariantSweep,
    ::testing::Combine(::testing::Values<int64_t>(1, 7, 32, 100, 512),
                       ::testing::Values<uint64_t>(3, 4)),
    [](const ::testing::TestParamInfo<SwConfig>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace rl0
