// Unit tests for the duplicate-suppression front-end (core/dup_filter.h):
// the set-associative cache mechanics (store/lookup/evict/invalidate), the
// caller-side epoch discipline, the disabled and compiled-out
// configurations, and the counter accounting surfaced through the
// samplers. The decision-identity contract itself — filter-on equals
// filter-off bit-for-bit — is pinned by the determinism and fuzz suites;
// this file covers the cache in isolation.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rl0/core/dup_filter.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/geom/point.h"

namespace rl0 {
namespace {

TEST(DupFilterTest, CompiledInMatchesBuildConfiguration) {
#if defined(RL0_NO_DUP_FILTER)
  EXPECT_FALSE(DupFilter::kCompiledIn);
#else
  EXPECT_TRUE(DupFilter::kCompiledIn);
#endif
}

TEST(DupFilterTest, DefaultAndDisabledFiltersAreInert) {
  DupFilter none;
  EXPECT_FALSE(none.enabled());
  EXPECT_FALSE(none.Lookup(42, Point{1.0, 2.0}).found);
  EXPECT_EQ(none.Store(42, 0, Point{1.0, 2.0}), nullptr);

  DupFilter off(/*dim=*/2, /*payload_len=*/1, /*enabled=*/false);
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.Lookup(42, Point{1.0, 2.0}).found);
  EXPECT_EQ(off.Store(42, 0, Point{1.0, 2.0}), nullptr);
  // Everything the sampler processed counts as bypassed.
  const DupFilterStats stats = off.stats(/*points_processed=*/17);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.bypassed, 17u);
}

TEST(DupFilterTest, StoreLookupRoundtrip) {
  if (!DupFilter::kCompiledIn) GTEST_SKIP() << "front-end compiled out";
  DupFilter filter(/*dim=*/3, /*payload_len=*/2, /*enabled=*/true);
  ASSERT_TRUE(filter.enabled());
  const Point p{1.5, -2.25, 3.0};

  uint32_t* payload = filter.Store(/*cell_key=*/99, /*epoch=*/7, p);
  ASSERT_NE(payload, nullptr);
  payload[0] = 11;
  payload[1] = 22;

  const DupFilter::View hit = filter.Lookup(99, p);
  ASSERT_TRUE(hit.found);
  EXPECT_EQ(hit.epoch, 7u);
  EXPECT_EQ(hit.payload[0], 11u);
  EXPECT_EQ(hit.payload[1], 22u);

  // Same key, different bytes: the guard must reject.
  EXPECT_FALSE(filter.Lookup(99, Point{1.5, -2.25, 3.0000001}).found);
  // Different key entirely.
  EXPECT_FALSE(filter.Lookup(100, p).found);
}

TEST(DupFilterTest, LookupReportsEpochForCallerSideValidation) {
  // The filter deliberately does NOT validate epochs (the SW epoch is a
  // function of the payload); it hands the recorded epoch back and the
  // caller compares. A stale epoch must therefore still be *found*.
  if (!DupFilter::kCompiledIn) GTEST_SKIP() << "front-end compiled out";
  DupFilter filter(/*dim=*/1, /*payload_len=*/1, /*enabled=*/true);
  const Point p{4.0};
  filter.Store(5, /*epoch=*/3, p)[0] = 1;
  const DupFilter::View hit = filter.Lookup(5, p);
  ASSERT_TRUE(hit.found);
  EXPECT_EQ(hit.epoch, 3u);  // caller checks this against generation()
  // Re-storing refreshes the epoch in place.
  filter.Store(5, /*epoch=*/9, p)[0] = 2;
  const DupFilter::View refreshed = filter.Lookup(5, p);
  ASSERT_TRUE(refreshed.found);
  EXPECT_EQ(refreshed.epoch, 9u);
  EXPECT_EQ(refreshed.payload[0], 2u);
}

TEST(DupFilterTest, SameCellPatternsShareASet) {
  // A perturbed arrival shares the exact repeat's cell key but not its
  // bytes; the two ways let both patterns stay resident instead of
  // evicting each other (the direct-mapped failure mode).
  if (!DupFilter::kCompiledIn) GTEST_SKIP() << "front-end compiled out";
  DupFilter filter(/*dim=*/1, /*payload_len=*/1, /*enabled=*/true);
  const Point hot{1.0}, noise{1.0000001};
  filter.Store(9, 0, hot)[0] = 1;
  filter.Store(9, 0, noise)[0] = 2;
  const DupFilter::View h = filter.Lookup(9, hot);
  const DupFilter::View n = filter.Lookup(9, noise);
  ASSERT_TRUE(h.found);
  ASSERT_TRUE(n.found);
  EXPECT_EQ(h.payload[0], 1u);
  EXPECT_EQ(n.payload[0], 2u);
}

TEST(DupFilterTest, SetEvictsLeastRecentlyUsedWay) {
  if (!DupFilter::kCompiledIn) GTEST_SKIP() << "front-end compiled out";
  // Find three keys mapping to the same set (same top 7 bits of the
  // multiplicative hash): the third store must evict the way the set
  // touched least recently, not the hottest entry.
  const auto set_of = [](uint64_t key) {
    return static_cast<size_t>((key * 0x9E3779B97F4A7C15ULL) >> 57);
  };
  const uint64_t a = 1;
  uint64_t b = 2;
  while (set_of(b) != set_of(a)) ++b;
  uint64_t c = b + 1;
  while (set_of(c) != set_of(a)) ++c;

  DupFilter filter(/*dim=*/1, /*payload_len=*/1, /*enabled=*/true);
  const Point pa{1.0}, pb{2.0}, pc{3.0};
  filter.Store(a, 0, pa)[0] = 1;
  filter.Store(b, 0, pb)[0] = 2;
  ASSERT_TRUE(filter.Lookup(a, pa).found);  // marks a's way most-recent
  filter.Store(c, 0, pc)[0] = 3;
  EXPECT_TRUE(filter.Lookup(a, pa).found);   // survived: it was hot
  EXPECT_TRUE(filter.Lookup(c, pc).found);
  EXPECT_FALSE(filter.Lookup(b, pb).found);  // evicted as least-recent
}

TEST(DupFilterTest, InvalidateDropsEverything) {
  if (!DupFilter::kCompiledIn) GTEST_SKIP() << "front-end compiled out";
  DupFilter filter(/*dim=*/1, /*payload_len=*/1, /*enabled=*/true);
  for (uint64_t k = 0; k < 64; ++k) {
    filter.Store(k, 0, Point{static_cast<double>(k)})[0] = 0;
  }
  filter.Invalidate();
  for (uint64_t k = 0; k < 64; ++k) {
    EXPECT_FALSE(filter.Lookup(k, Point{static_cast<double>(k)}).found);
  }
}

TEST(DupFilterTest, StatsAccountingSplitsHitsMissesBypassed) {
  DupFilter filter(/*dim=*/1, /*payload_len=*/1, DupFilter::kCompiledIn);
  filter.CountHit();
  filter.CountHit();
  filter.CountMiss();
  const DupFilterStats stats = filter.stats(/*points_processed=*/10);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bypassed, 7u);

  DupFilterStats sum;
  sum += stats;
  sum += stats;
  EXPECT_EQ(sum.hits, 4u);
  EXPECT_EQ(sum.bypassed, 14u);
}

TEST(DupFilterTest, SamplerCountersReflectExactRepeats) {
  // End-to-end counter plumbing: exact repeats of a settled group set
  // must show up as hits in the sampler's filter_stats(), and a
  // --no-filter-style configuration reports pure bypass.
  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 1.0;
  opts.seed = 99;
  opts.expected_stream_length = 1024;
  auto on = RobustL0SamplerIW::Create(opts).value();
  SamplerOptions off_opts = opts;
  off_opts.dup_filter = false;
  auto off = RobustL0SamplerIW::Create(off_opts).value();

  const Point a{0.0, 0.0}, b{50.0, 50.0};
  for (int i = 0; i < 20; ++i) {
    on.Insert(i % 2 ? a : b);
    off.Insert(i % 2 ? a : b);
  }
  const DupFilterStats stats_on = on.filter_stats();
  const DupFilterStats stats_off = off.filter_stats();
  EXPECT_EQ(stats_on.hits + stats_on.misses + stats_on.bypassed, 20u);
  if (DupFilter::kCompiledIn) {
    // After both groups exist and their entries are re-armed, every
    // further exact repeat hits: 20 arrivals, 2 first-sightings, and 2
    // stale-epoch misses right after each Add bumps the generation.
    EXPECT_GT(stats_on.hits, 10u);
  } else {
    EXPECT_EQ(stats_on.bypassed, 20u);
  }
  EXPECT_EQ(stats_off.hits, 0u);
  EXPECT_EQ(stats_off.misses, 0u);
  EXPECT_EQ(stats_off.bypassed, 20u);
  // Counters are observability only: decisions are identical regardless.
  EXPECT_EQ(on.accept_size() + on.reject_size(),
            off.accept_size() + off.reject_size());
}

}  // namespace
}  // namespace rl0
