// Tests for WindowedReservoir (sliding-window uniform sampling, the
// Section 2.3 reservoir replacement) and for the random-representative
// mode of the sliding-window samplers built on it.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rl0/core/sw_fixed_sampler.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/core/windowed_reservoir.h"
#include "rl0/metrics/distribution.h"

namespace rl0 {
namespace {

TEST(WindowedReservoirTest, EmptyIsNullopt) {
  WindowedReservoir res(10, 1);
  EXPECT_FALSE(res.Sample(0).has_value());
  EXPECT_EQ(res.size(), 0u);
}

TEST(WindowedReservoirTest, SingleItemIsReturned) {
  WindowedReservoir res(10, 2);
  res.Insert(Point{5.0}, 3, 42);
  const auto s = res.Sample(3);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->point, Point({5.0}));
  EXPECT_EQ(s->stream_index, 42u);
}

TEST(WindowedReservoirTest, ExpiryRespectsWindow) {
  WindowedReservoir res(5, 3);
  res.Insert(Point{1.0}, 0, 0);
  EXPECT_TRUE(res.Sample(4).has_value());
  EXPECT_FALSE(res.Sample(5).has_value());  // 0 <= 5-5: expired
}

TEST(WindowedReservoirTest, SampleIsAlwaysUnexpired) {
  WindowedReservoir res(8, 4);
  for (int t = 0; t < 200; ++t) {
    res.Insert(Point{static_cast<double>(t)}, t, static_cast<uint64_t>(t));
    const auto s = res.Sample(t);
    ASSERT_TRUE(s.has_value());
    EXPECT_GT(s->point[0], static_cast<double>(t - 8));
    EXPECT_LE(s->point[0], static_cast<double>(t));
  }
}

TEST(WindowedReservoirTest, CandidateSetStaysLogarithmic) {
  WindowedReservoir res(1 << 14, 5);
  size_t max_size = 0;
  for (int t = 0; t < (1 << 14); ++t) {
    res.Insert(Point{0.0}, t, static_cast<uint64_t>(t));
    max_size = std::max(max_size, res.size());
  }
  // Expected suffix-minima count is H_n ≈ ln(16384) ≈ 9.7; allow slack.
  EXPECT_LE(max_size, 40u);
}

TEST(WindowedReservoirTest, UniformOverWindowItems) {
  // Window of 10 items: each must be sampled ~1/10 across seeds.
  const int window = 10;
  SampleDistribution dist(window);
  const int runs = 30000;
  for (int run = 0; run < runs; ++run) {
    WindowedReservoir res(window, 100 + run);
    for (int t = 0; t < 25; ++t) {  // 25 items; last 10 alive
      res.Insert(Point{static_cast<double>(t)}, t,
                 static_cast<uint64_t>(t));
    }
    const auto s = res.Sample(24);
    ASSERT_TRUE(s.has_value());
    const int offset = static_cast<int>(s->point[0]) - 15;
    ASSERT_GE(offset, 0);
    ASSERT_LT(offset, window);
    dist.Record(static_cast<uint32_t>(offset));
  }
  EXPECT_LT(dist.MaxDevNm(), 0.1);
}

TEST(WindowedReservoirTest, DeterministicPerSeed) {
  WindowedReservoir a(16, 9), b(16, 9);
  for (int t = 0; t < 50; ++t) {
    a.Insert(Point{1.0 * t}, t, static_cast<uint64_t>(t));
    b.Insert(Point{1.0 * t}, t, static_cast<uint64_t>(t));
  }
  EXPECT_EQ(a.Sample(49)->stream_index, b.Sample(49)->stream_index);
}

// ------------------------------------------- random-representative mode

SamplerOptions ReservoirOptions(uint64_t seed) {
  SamplerOptions opts;
  opts.dim = 1;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.random_representative = true;
  opts.expected_stream_length = 1 << 14;
  return opts;
}

TEST(SwReservoirModeTest, FixedRateReturnsUniformGroupPoint) {
  // One group with points at stamps 0..9 (all alive, window 100): the
  // returned point must be ~uniform over the 10 member points.
  SampleDistribution dist(10);
  const int runs = 20000;
  for (int run = 0; run < runs; ++run) {
    auto sampler = SwFixedRateSampler::CreateStandalone(
                       ReservoirOptions(500 + run), 0, 100)
                       .value();
    for (int t = 0; t < 10; ++t) {
      sampler->Insert(Point{0.05 * t}, t);
    }
    Xoshiro256pp rng(run);
    const auto s = sampler->Sample(9, &rng);
    ASSERT_TRUE(s.has_value());
    dist.Record(static_cast<uint32_t>(s->stream_index));
  }
  EXPECT_EQ(dist.ZeroGroups(), 0u);
  EXPECT_LT(dist.MaxDevNm(), 0.15);
}

TEST(SwReservoirModeTest, OnlyUnexpiredPointsReturned) {
  // Group points at stamps 0, 2, 40; window 10: at now=45 only the stamp-
  // 40 point is alive and must always be the sample.
  for (uint64_t seed = 0; seed < 30; ++seed) {
    auto sampler = SwFixedRateSampler::CreateStandalone(
                       ReservoirOptions(seed), 0, 10)
                       .value();
    sampler->Insert(Point{0.0}, 0);
    sampler->Insert(Point{0.1}, 2);
    sampler->Insert(Point{0.2}, 40);
    Xoshiro256pp rng(seed);
    const auto s = sampler->Sample(45, &rng);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->point, Point({0.2}));
  }
}

TEST(SwReservoirModeTest, HierarchySamplesGroupMembersWithinConstantFactor) {
  // The hierarchical sampler with random_representative: one recurring
  // group (6 live members) among isolated groups. In the hierarchy a
  // group's reservoir restarts whenever a prune drops the group and a
  // later member re-establishes it, so older members are somewhat
  // under-represented: the guarantee is a Θ(1) share per member (exact
  // uniformity holds for the fixed-rate Algorithm 2, tested above).
  std::vector<uint64_t> member_counts(6, 0);
  const int runs = 12000;
  for (int run = 0; run < runs; ++run) {
    auto sampler =
        RobustL0SamplerSW::Create(ReservoirOptions(3000 + run), 32).value();
    // Interleave: recurring group member every 5th point, stamps 0..29.
    int member = 0;
    for (int t = 0; t < 30; ++t) {
      if (t % 5 == 0) {
        sampler.Insert(Point{0.05 * member}, t);
        ++member;
      } else {
        sampler.Insert(Point{1000.0 + 10.0 * t}, t);
      }
    }
    Xoshiro256pp rng(7000 + run);
    const auto s = sampler.Sample(29, &rng);
    ASSERT_TRUE(s.has_value());
    if (s->point[0] < 1.0) {  // recurring group sampled
      const int idx = static_cast<int>(s->point[0] / 0.05 + 0.5);
      ASSERT_LT(idx, 6);
      ++member_counts[idx];
    }
  }
  uint64_t total = 0;
  for (uint64_t c : member_counts) total += c;
  ASSERT_GT(total, 500u);  // the group is sampled often enough to judge
  for (uint64_t c : member_counts) {
    const double share = static_cast<double>(c) / static_cast<double>(total);
    EXPECT_GT(share, 1.0 / 6.0 / 3.0);
    EXPECT_LT(share, 1.0 / 6.0 * 2.5);
  }
}

TEST(SwReservoirModeTest, SpaceAccountsForReservoirs) {
  auto plain = SwFixedRateSampler::CreateStandalone(
                   [] {
                     SamplerOptions o = ReservoirOptions(1);
                     o.random_representative = false;
                     return o;
                   }(),
                   0, 1000)
                   .value();
  auto reservoir =
      SwFixedRateSampler::CreateStandalone(ReservoirOptions(1), 0, 1000)
          .value();
  for (int t = 0; t < 200; ++t) {
    plain->Insert(Point{0.001 * t}, t);
    reservoir->Insert(Point{0.001 * t}, t);
  }
  EXPECT_GT(reservoir->SpaceWords(), plain->SpaceWords());
}

}  // namespace
}  // namespace rl0
