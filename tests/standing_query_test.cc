// Standing-query battery for the tenant registry (serve/registry.h):
// subscriptions fire at positions that are a deterministic function of
// the fed stream — invariant under feed chunking — in all three stamp
// modes; digest items are always live window members (never expired
// groups); churn alerts measure drift from the last alerted baseline;
// and sampler state survives a checkpoint/recover cycle byte-for-byte
// while subscriptions (scratch state) do not.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "rl0/core/sharded_pool.h"
#include "rl0/serve/protocol.h"
#include "rl0/serve/registry.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace serve {
namespace {

CreateParams SeqParams(size_t dim, int64_t window, uint64_t seed) {
  CreateParams p;
  p.dim = dim;
  p.alpha = 0.5;
  p.window = window;
  p.seed = seed;
  p.expected_m = 1 << 14;
  return p;
}

Command SubscribeCmd(QueryKind kind, uint64_t every, int queries = 1,
                     double threshold = 0.0) {
  Command cmd;
  cmd.type = CommandType::kSubscribe;
  cmd.query = kind;
  cmd.every = every;
  cmd.queries = queries;
  cmd.threshold = threshold;
  return cmd;
}

std::vector<Point> Ramp(size_t n, double scale = 1.0) {
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point p(1);
    p[0] = scale * static_cast<double>(i);
    points.push_back(std::move(p));
  }
  return points;
}

/// The at= label of an EVENT block's head line.
int64_t EventAt(const std::string& block) {
  const size_t pos = block.find("at=");
  EXPECT_NE(pos, std::string::npos) << block;
  if (pos == std::string::npos) return -1;
  return std::atoll(block.c_str() + pos + 3);
}

TEST(StandingQueryTest, SequenceDigestFiresAtEveryCrossing) {
  TenantRegistry registry(TenantRegistry::Options{});
  ASSERT_TRUE(registry.Create("t", SeqParams(1, 100, 3)).ok());

  std::vector<std::string> blocks;
  auto sub = registry.Subscribe(
      "t", SubscribeCmd(QueryKind::kDigest, 10), 1,
      [&](const std::string& block) {
        blocks.push_back(block);
        return true;
      });
  ASSERT_TRUE(sub.ok());

  // 35 points in ragged chunks: crossings at counts 10, 20, 30 →
  // evaluated at now = 9, 19, 29.
  const auto points = Ramp(35);
  ASSERT_TRUE(registry
                  .Feed("t", std::vector<Point>(points.begin(),
                                                points.begin() + 7))
                  .ok());
  ASSERT_TRUE(registry
                  .Feed("t", std::vector<Point>(points.begin() + 7,
                                                points.begin() + 16))
                  .ok());
  ASSERT_TRUE(registry
                  .Feed("t", std::vector<Point>(points.begin() + 16,
                                                points.end()))
                  .ok());

  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(EventAt(blocks[0]), 9);
  EXPECT_EQ(EventAt(blocks[1]), 19);
  EXPECT_EQ(EventAt(blocks[2]), 29);
  for (const std::string& block : blocks) {
    EXPECT_NE(block.find("EVENT t "), std::string::npos);
    EXPECT_NE(block.find(" digest "), std::string::npos);
    EXPECT_NE(block.find("ITEM "), std::string::npos);
    EXPECT_EQ(block.rfind("END\n"), block.size() - 4);
  }
}

TEST(StandingQueryTest, FiringPositionsAndItemsInvariantUnderChunking) {
  // The same stream fed as one slab vs. point-by-point produces the
  // same EVENT blocks, byte for byte (chunking-invariance surfaced at
  // the protocol level).
  const auto points = Ramp(50);
  std::vector<std::string> slab_blocks;
  std::vector<std::string> dribble_blocks;

  for (int variant = 0; variant < 2; ++variant) {
    auto& blocks = variant == 0 ? slab_blocks : dribble_blocks;
    TenantRegistry registry(TenantRegistry::Options{});
    ASSERT_TRUE(registry.Create("t", SeqParams(1, 100, 3)).ok());
    ASSERT_TRUE(registry
                    .Subscribe("t", SubscribeCmd(QueryKind::kDigest, 8, 2),
                               1,
                               [&](const std::string& block) {
                                 blocks.push_back(block);
                                 return true;
                               })
                    .ok());
    if (variant == 0) {
      ASSERT_TRUE(registry.Feed("t", points).ok());
    } else {
      for (const Point& p : points) {
        ASSERT_TRUE(registry.Feed("t", {p}).ok());
      }
    }
  }
  EXPECT_EQ(slab_blocks, dribble_blocks);
  ASSERT_EQ(slab_blocks.size(), 6u);  // crossings at 8,16,...,48
  EXPECT_EQ(EventAt(slab_blocks[0]), 7);
  EXPECT_EQ(EventAt(slab_blocks[5]), 47);
}

TEST(StandingQueryTest, TimeModeFiresAtStampCrossings) {
  TenantRegistry registry(TenantRegistry::Options{});
  CreateParams params = SeqParams(1, 1000, 5);
  params.mode = TenantMode::kTime;
  ASSERT_TRUE(registry.Create("t", params).ok());

  std::vector<int64_t> fired;
  ASSERT_TRUE(registry
                  .Subscribe("t", SubscribeCmd(QueryKind::kDigest, 100), 1,
                             [&](const std::string& block) {
                               fired.push_back(EventAt(block));
                               return true;
                             })
                  .ok());

  // Stamps jump over trigger positions: the trigger fires at the first
  // stamp ≥ the crossing, evaluated at that stamp.
  const auto points = Ramp(6);
  ASSERT_TRUE(registry
                  .FeedStamped("t", points,
                               {10, 90, 130, 220, 390, 640})
                  .ok());
  // Crossings: 100 → fires at stamp 130; 200 → 220; 300/400 → one fire
  // at 390? No: 300 ≤ 390 fires at 390, then next_fire advances past
  // 390 to 400; 400 ≤ 640 fires at 640, advancing past 640 to 700.
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0], 130);
  EXPECT_EQ(fired[1], 220);
  EXPECT_EQ(fired[2], 390);
  EXPECT_EQ(fired[3], 640);
}

TEST(StandingQueryTest, TimeModeHugeStampJumpIsCheapAndStaysAligned) {
  // Regression: trigger catch-up used to advance next_fire by `every`
  // one multiple at a time, so an epoch-nanosecond jump over a small
  // cadence spun ~1e16 iterations under the tenant mutex. The jump must
  // cost O(1) and land on the next absolute multiple of `every`.
  TenantRegistry registry(TenantRegistry::Options{});
  CreateParams params = SeqParams(1, 1000, 5);
  params.mode = TenantMode::kTime;
  ASSERT_TRUE(registry.Create("t", params).ok());

  std::vector<int64_t> fired;
  ASSERT_TRUE(registry
                  .Subscribe("t", SubscribeCmd(QueryKind::kDigest, 100), 1,
                             [&](const std::string& block) {
                               fired.push_back(EventAt(block));
                               return true;
                             })
                  .ok());

  constexpr int64_t kEpochNs = 1'700'000'000'000'000'000;
  ASSERT_TRUE(registry.FeedStamped("t", Ramp(1), {10}).ok());
  ASSERT_TRUE(registry.FeedStamped("t", Ramp(1), {kEpochNs}).ok());
  // One fire per crossing batch, at the jump stamp.
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], kEpochNs);
  // next_fire realigned to the next absolute multiple after the jump:
  // kEpochNs + 50 stays below it, kEpochNs + 100 crosses.
  ASSERT_TRUE(registry.FeedStamped("t", Ramp(1), {kEpochNs + 50}).ok());
  ASSERT_EQ(fired.size(), 1u);
  ASSERT_TRUE(registry.FeedStamped("t", Ramp(1), {kEpochNs + 100}).ok());
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], kEpochNs + 100);
}

TEST(StandingQueryTest, TriggerArithmeticSaturatesNearInt64Max) {
  // Regression: next-fire computation could signed-overflow (UB) when
  // the tenant clock and `every` were both large-but-valid; it must
  // saturate instead — a trigger past INT64_MAX simply never fires.
  TenantRegistry registry(TenantRegistry::Options{});
  CreateParams params = SeqParams(1, 1000, 5);
  params.mode = TenantMode::kTime;
  ASSERT_TRUE(registry.Create("t", params).ok());

  constexpr int64_t kBig = int64_t{6'000'000'000'000'000'000};  // 6e18
  ASSERT_TRUE(registry.FeedStamped("t", Ramp(1), {kBig}).ok());

  std::vector<int64_t> fired;
  // clock/every + 1 == 2 and 2 * 5e18 overflows int64: Subscribe must
  // park this trigger at INT64_MAX, not wrap it negative.
  ASSERT_TRUE(
      registry
          .Subscribe("t",
                     SubscribeCmd(QueryKind::kDigest,
                                  uint64_t{5'000'000'000'000'000'000}),
                     1,
                     [&](const std::string& block) {
                       fired.push_back(EventAt(block));
                       return true;
                     })
          .ok());
  ASSERT_TRUE(registry.FeedStamped("t", Ramp(1), {kBig + 10}).ok());
  EXPECT_TRUE(fired.empty());

  // FireDue's catch-up saturates too: a small cadence crossed within
  // `every` of INT64_MAX fires at the crossing, then parks forever.
  ASSERT_TRUE(registry
                  .Subscribe("t", SubscribeCmd(QueryKind::kDigest, 100), 1,
                             [&](const std::string& block) {
                               fired.push_back(EventAt(block));
                               return true;
                             })
                  .ok());
  const int64_t near_max = std::numeric_limits<int64_t>::max() - 5;
  ASSERT_TRUE(registry.FeedStamped("t", Ramp(1), {near_max}).ok());
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], near_max);
  ASSERT_TRUE(registry
                  .FeedStamped("t", Ramp(1),
                               {std::numeric_limits<int64_t>::max() - 1})
                  .ok());
  EXPECT_EQ(fired.size(), 1u);
}

TEST(StandingQueryTest, LateModeTriggersFollowReleaseFrontierAndFlush) {
  TenantRegistry registry(TenantRegistry::Options{});
  CreateParams params = SeqParams(1, 1000, 5);
  params.mode = TenantMode::kLate;
  params.lateness = 100;
  ASSERT_TRUE(registry.Create("t", params).ok());

  std::vector<int64_t> fired;
  ASSERT_TRUE(registry
                  .Subscribe("t", SubscribeCmd(QueryKind::kDigest, 50), 1,
                             [&](const std::string& block) {
                               fired.push_back(EventAt(block));
                               return true;
                             })
                  .ok());

  // Stamps reach 120, but the release frontier trails by the lateness
  // bound (100): only releases up to ~20 — no trigger yet.
  const auto points = Ramp(4);
  ASSERT_TRUE(
      registry.FeedStamped("t", points, {80, 40, 120, 100}).ok());
  EXPECT_TRUE(fired.empty());

  // FLUSH releases everything: the frontier jumps to 120, crossing the
  // triggers at 50 and 100 — one fire per crossing batch (the skipped
  // boundary does not replay), labelled with the frontier.
  ASSERT_TRUE(registry.Flush("t").ok());
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 120);

  // The next boundary (150) is still pending. Feeding stamps up to 280
  // advances the release frontier to 280 - lateness = 180, crossing it
  // (fire at 180); the final FLUSH pushes the frontier to 280, crossing
  // the rearmed boundary at 200 (fire at 280).
  ASSERT_TRUE(registry.FeedStamped("t", Ramp(2), {200, 280}).ok());
  ASSERT_TRUE(registry.Flush("t").ok());
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[1], 180);
  EXPECT_EQ(fired[2], 280);
}

TEST(StandingQueryTest, DigestItemsAreNeverExpired) {
  // Tight window over a drifting stream: every ITEM a digest reports
  // must come from inside the window at its fire position.
  TenantRegistry registry(TenantRegistry::Options{});
  const int64_t kWindow = 40;
  ASSERT_TRUE(registry.Create("t", SeqParams(1, kWindow, 9)).ok());

  std::vector<std::string> blocks;
  ASSERT_TRUE(registry
                  .Subscribe("t", SubscribeCmd(QueryKind::kDigest, 25, 3),
                             1,
                             [&](const std::string& block) {
                               blocks.push_back(block);
                               return true;
                             })
                  .ok());

  Xoshiro256pp rng(17);
  std::vector<Point> points;
  for (size_t i = 0; i < 400; ++i) {
    Point p(1);
    // Drifting clusters so old groups genuinely expire.
    p[0] = 10.0 * static_cast<double>(i / 20) + 0.2 * rng.NextDouble();
    points.push_back(std::move(p));
  }
  for (size_t off = 0; off < points.size(); off += 33) {
    const size_t end = std::min(points.size(), off + 33);
    ASSERT_TRUE(
        registry
            .Feed("t", std::vector<Point>(points.begin() + off,
                                          points.begin() + end))
            .ok());
  }

  ASSERT_EQ(blocks.size(), 16u);  // 400 / 25
  for (const std::string& block : blocks) {
    const int64_t at = EventAt(block);
    // Every ITEM line carries "# stream position P": P must lie within
    // the window (at - W, at].
    size_t pos = 0;
    int items = 0;
    while ((pos = block.find("# stream position ", pos)) !=
           std::string::npos) {
      const long long p = std::atoll(block.c_str() + pos + 18);
      EXPECT_GT(p, at - kWindow) << block;
      EXPECT_LE(p, at) << block;
      ++items;
      pos += 18;
    }
    EXPECT_EQ(items, 3) << block;  // q=3, and the window is never empty
  }
}

TEST(StandingQueryTest, F0EventsReportTheCvmWatermark) {
  TenantRegistry registry(TenantRegistry::Options{});
  ASSERT_TRUE(registry.Create("t", SeqParams(1, 1000, 3)).ok());

  std::vector<std::string> blocks;
  ASSERT_TRUE(registry
                  .Subscribe("t", SubscribeCmd(QueryKind::kF0, 20), 1,
                             [&](const std::string& block) {
                               blocks.push_back(block);
                               return true;
                             })
                  .ok());
  ASSERT_TRUE(registry.Feed("t", Ramp(60)).ok());
  ASSERT_EQ(blocks.size(), 3u);
  for (const std::string& block : blocks) {
    EXPECT_NE(block.find("DATA f0_exact="), std::string::npos) << block;
    EXPECT_NE(block.find("observed="), std::string::npos) << block;
  }
  // Small stream, default capacity: CVM is still exact — the last
  // watermark observed 60 arrivals.
  EXPECT_NE(blocks[2].find("observed=60"), std::string::npos) << blocks[2];
}

TEST(StandingQueryTest, ChurnAlertsOnDriftFromLastAlertedBaseline) {
  TenantRegistry registry(TenantRegistry::Options{});
  ASSERT_TRUE(registry.Create("t", SeqParams(1, 10000, 3)).ok());

  std::vector<std::string> blocks;
  ASSERT_TRUE(registry
                  .Subscribe("t",
                             SubscribeCmd(QueryKind::kChurn, 50, 1,
                                          /*threshold=*/0.5),
                             1,
                             [&](const std::string& block) {
                               blocks.push_back(block);
                               return true;
                             })
                  .ok());

  // First 50 points: 50 distinct values → first evaluation seeds the
  // baseline silently (no alert).
  ASSERT_TRUE(registry.Feed("t", Ramp(50)).ok());
  EXPECT_EQ(blocks.size(), 0u);

  // Next 50 repeat one value: distinct count barely moves → no alert.
  std::vector<Point> flat(50, Ramp(1)[0]);
  ASSERT_TRUE(registry.Feed("t", flat).ok());
  EXPECT_EQ(blocks.size(), 0u);

  // Then 100 fresh distinct values → ≥50% drift from the baseline →
  // alerts fire.
  ASSERT_TRUE(registry.Feed("t", Ramp(100, 1e6)).ok());
  ASSERT_GE(blocks.size(), 1u);
  EXPECT_NE(blocks[0].find(" churn "), std::string::npos);
  EXPECT_NE(blocks[0].find("DATA "), std::string::npos);
}

TEST(StandingQueryTest, UnsubscribeAndDropOwnerStopDelivery) {
  TenantRegistry registry(TenantRegistry::Options{});
  ASSERT_TRUE(registry.Create("t", SeqParams(1, 100, 3)).ok());

  int count_a = 0;
  int count_b = 0;
  auto sub_a = registry.Subscribe("t", SubscribeCmd(QueryKind::kDigest, 10),
                                  /*owner=*/1, [&](const std::string&) {
                                    ++count_a;
                                    return true;
                                  });
  auto sub_b = registry.Subscribe("t", SubscribeCmd(QueryKind::kDigest, 10),
                                  /*owner=*/2, [&](const std::string&) {
                                    ++count_b;
                                    return true;
                                  });
  ASSERT_TRUE(sub_a.ok());
  ASSERT_TRUE(sub_b.ok());

  ASSERT_TRUE(registry.Feed("t", Ramp(10)).ok());
  EXPECT_EQ(count_a, 1);
  EXPECT_EQ(count_b, 1);

  ASSERT_TRUE(registry.Unsubscribe("t", sub_a.value()).ok());
  registry.DropOwner(2);
  ASSERT_TRUE(registry.Feed("t", Ramp(20)).ok());
  EXPECT_EQ(count_a, 1);
  EXPECT_EQ(count_b, 1);

  // A sink returning false also permanently drops its subscription.
  int count_c = 0;
  ASSERT_TRUE(registry
                  .Subscribe("t", SubscribeCmd(QueryKind::kDigest, 10), 3,
                             [&](const std::string&) {
                               ++count_c;
                               return false;
                             })
                  .ok());
  ASSERT_TRUE(registry.Feed("t", Ramp(30)).ok());
  EXPECT_EQ(count_c, 1);
  ASSERT_TRUE(registry.Feed("t", Ramp(10)).ok());
  EXPECT_EQ(count_c, 1);
}

TEST(StandingQueryTest, SamplerStateSurvivesCheckpointRecover) {
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("rl0_sq_ckpt_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(root);

  TenantRegistry::Options options;
  options.checkpoint_root = root;
  Xoshiro256pp rng(99);
  std::vector<Point> points;
  for (size_t i = 0; i < 2000; ++i) {
    Point p(2);
    p[0] = 10.0 * static_cast<double>(rng.NextBounded(40)) +
           0.3 * rng.NextDouble();
    p[1] = p[0];
    points.push_back(std::move(p));
  }

  std::vector<std::string> before;
  {
    TenantRegistry registry(options);
    CreateParams params = SeqParams(2, 300, 7);
    params.checkpoint = true;
    params.checkpoint_every = 512;
    ASSERT_TRUE(registry.Create("t", params).ok());
    // A live subscription rides along; it must not corrupt checkpoints.
    ASSERT_TRUE(registry
                    .Subscribe("t", SubscribeCmd(QueryKind::kDigest, 100),
                               1, [](const std::string&) { return true; })
                    .ok());
    ASSERT_TRUE(registry.Feed("t", points).ok());
    auto sampled = registry.Sample("t", 5, false, 0);
    ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();
    before = sampled.value();
    ASSERT_TRUE(registry.Close("t").ok());
  }

  {
    TenantRegistry registry(options);
    CreateParams params = SeqParams(2, 300, 7);
    params.checkpoint = true;
    params.recover = true;
    ASSERT_TRUE(registry.Create("t", params).ok());
    auto sampled = registry.Sample("t", 5, false, 0);
    ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();
    // Bit-identical draws: the recovered pool is the pre-close pool.
    EXPECT_EQ(sampled.value(), before);

    // The recovered tenant keeps working: feeding continues the stream
    // and new triggers fire from the recovered position.
    std::vector<std::string> blocks;
    ASSERT_TRUE(registry
                    .Subscribe("t", SubscribeCmd(QueryKind::kDigest, 500),
                               1,
                               [&](const std::string& block) {
                                 blocks.push_back(block);
                                 return true;
                               })
                    .ok());
    ASSERT_TRUE(
        registry
            .Feed("t", std::vector<Point>(points.begin(),
                                          points.begin() + 600))
            .ok());
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(EventAt(blocks[0]), 2499);  // crossing at count 2500
    ASSERT_TRUE(registry.Close("t").ok());
  }
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace serve
}  // namespace rl0
