// In-process harness for the rl0_serve test battery: starts a real
// Server on a unix socket and speaks the wire protocol through plain
// blocking sockets, so the tests cover the exact byte path a client
// sees — LineDecoder framing, command dispatch, response ordering and
// push-style EVENT delivery included.
//
// TestClient::Command sends one line and collects the response unit
// (data lines + the terminating OK/ERR). EVENT blocks that arrive
// in between — standing queries fire on the feeder's thread but are
// delivered to the subscriber's queue — are diverted whole into
// events() for separate inspection.

#ifndef RL0_TESTS_SERVE_TEST_UTIL_H_
#define RL0_TESTS_SERVE_TEST_UTIL_H_

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "rl0/serve/protocol.h"
#include "rl0/serve/server.h"

namespace rl0 {
namespace serve {

/// A unique, short (sun_path-safe) socket path for this test process.
inline std::string TestSocketPath(const char* tag) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "/tmp/rl0s-%d-%s.sock",
                static_cast<int>(::getpid()), tag);
  return buf;
}

class TestClient {
 public:
  explicit TestClient(const std::string& unix_path) : decoder_(1 << 20) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ >= 0 &&
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~TestClient() { Close(); }

  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  /// Sends raw bytes exactly as given (no newline appended) — partial
  /// and pipelined framing tests build lines by hand.
  bool SendRaw(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool SendLine(const std::string& line) { return SendRaw(line + "\n"); }

  /// Sends `line` and returns its response unit: every data line plus
  /// the final OK/ERR line. EVENT blocks arriving first or in between
  /// are diverted to events(). On I/O failure or timeout the returned
  /// vector ends with "<io error>" so expectations fail loudly.
  std::vector<std::string> Command(const std::string& line,
                                   int timeout_ms = 10000) {
    if (!SendLine(line)) return {"<io error>"};
    return ReadUnit(timeout_ms);
  }

  /// Reads one response unit without sending anything.
  std::vector<std::string> ReadUnit(int timeout_ms = 10000) {
    std::vector<std::string> unit;
    std::string text;
    bool in_event = false;
    std::vector<std::string> event;
    for (;;) {
      if (!NextLine(&text, timeout_ms)) {
        unit.push_back("<io error>");
        return unit;
      }
      if (in_event) {
        event.push_back(text);
        if (text == "END") {
          events_.push_back(std::move(event));
          event.clear();
          in_event = false;
        }
        continue;
      }
      if (text.rfind("EVENT", 0) == 0) {
        in_event = true;
        event.assign(1, text);
        continue;
      }
      unit.push_back(text);
      if (text.rfind("OK", 0) == 0 || text.rfind("ERR", 0) == 0) {
        return unit;
      }
    }
  }

  /// Blocks until at least `count` EVENT blocks have been collected
  /// (draining the socket) or the timeout passes.
  bool WaitForEvents(size_t count, int timeout_ms = 10000) {
    std::string text;
    std::vector<std::string> event;
    bool in_event = false;
    while (events_.size() < count) {
      if (!NextLine(&text, timeout_ms)) return false;
      if (in_event) {
        event.push_back(text);
        if (text == "END") {
          events_.push_back(std::move(event));
          event.clear();
          in_event = false;
        }
        continue;
      }
      if (text.rfind("EVENT", 0) == 0) {
        in_event = true;
        event.assign(1, text);
      }
      // Stray non-event lines during a pure wait would be a framing bug;
      // drop them so the wait times out and the test fails visibly.
    }
    return true;
  }

  /// EVENT blocks collected so far, one inner vector per block
  /// ("EVENT ..." through "END").
  const std::vector<std::vector<std::string>>& events() const {
    return events_;
  }

 private:
  /// One decoded line, reading more bytes as needed.
  bool NextLine(std::string* out, int timeout_ms) {
    for (;;) {
      const auto event = decoder_.Next(out);
      if (event == LineDecoder::Event::kLine) return true;
      if (event == LineDecoder::Event::kOversized) continue;
      pollfd pfd = {fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready <= 0) return false;
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      decoder_.Append(buf, static_cast<size_t>(n));
    }
  }

  int fd_ = -1;
  LineDecoder decoder_;
  std::vector<std::vector<std::string>> events_;
};

}  // namespace serve
}  // namespace rl0

#endif  // RL0_TESTS_SERVE_TEST_UTIL_H_
