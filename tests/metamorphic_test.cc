// Metamorphic tests: transformations of the input that provably must not
// change the sampler's observable state, plus adversarial stream orders.
// These catch bugs that example-based tests miss because the expected
// output is defined relative to another run instead of hand-computed.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "rl0/core/iw_sampler.h"
#include "rl0/core/reorder_buffer.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/core/snapshot.h"
#include "rl0/core/sw_fixed_sampler.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/stream/dataset.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"
#include "rl0/stream/window_stream.h"

namespace rl0 {
namespace {

SamplerOptions BaseOptions(uint64_t seed, size_t dim = 2) {
  SamplerOptions opts;
  opts.dim = dim;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.accept_cap = 12;
  opts.expected_stream_length = 1 << 14;
  return opts;
}

NoisyDataset MakeData(uint64_t seed, size_t groups = 80) {
  const BaseDataset base = RandomUniform(groups, 2, seed);
  NearDupOptions nd;
  nd.max_dups = 5;
  nd.seed = seed + 1;
  NoisyDataset data = MakeNearDuplicates(base, nd);
  // Rescale alpha into the tests' unit convention.
  for (Point& p : data.points) p = p * (1.0 / data.alpha);
  data.beta /= data.alpha;
  data.alpha = 1.0;
  return data;
}

std::vector<std::vector<double>> AcceptedSet(const RobustL0SamplerIW& s) {
  std::vector<std::vector<double>> out;
  for (const SampleItem& item : s.AcceptedRepresentatives()) {
    out.push_back(item.point.coords());
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(MetamorphicTest, ReinsertingSeenPointsIsANoOp) {
  const NoisyDataset data = MakeData(3);
  auto sampler = RobustL0SamplerIW::Create(BaseOptions(5)).value();
  for (const Point& p : data.points) sampler.Insert(p);
  const auto accepted = AcceptedSet(sampler);
  const uint32_t level = sampler.level();
  const size_t rejects = sampler.reject_size();
  // Re-insert every 3rd point again: every one is a member of an existing
  // candidate group or still ignored; nothing may change.
  for (size_t i = 0; i < data.points.size(); i += 3) {
    sampler.Insert(data.points[i]);
  }
  EXPECT_EQ(AcceptedSet(sampler), accepted);
  EXPECT_EQ(sampler.level(), level);
  EXPECT_EQ(sampler.reject_size(), rejects);
}

TEST(MetamorphicTest, ScaleInvariance) {
  // Scaling every coordinate and alpha by the same factor leaves the cell
  // structure (and hence every sampling decision) exactly unchanged: the
  // random offset is drawn as fraction*side, so it scales along.
  const NoisyDataset data = MakeData(7);
  for (const double scale : {0.001, 3.0, 1e6}) {
    SamplerOptions opts_a = BaseOptions(9);
    auto a = RobustL0SamplerIW::Create(opts_a).value();
    SamplerOptions opts_b = opts_a;
    opts_b.alpha = opts_a.alpha * scale;
    auto b = RobustL0SamplerIW::Create(opts_b).value();
    for (const Point& p : data.points) {
      a.Insert(p);
      b.Insert(p * scale);
    }
    EXPECT_EQ(a.level(), b.level()) << "scale=" << scale;
    EXPECT_EQ(a.accept_size(), b.accept_size()) << "scale=" << scale;
    EXPECT_EQ(a.reject_size(), b.reject_size()) << "scale=" << scale;
    // Accepted representatives map 1:1 through the scaling.
    const auto accepted_a = AcceptedSet(a);
    auto accepted_b = AcceptedSet(b);
    for (auto& coords : accepted_b) {
      for (double& c : coords) c /= scale;
    }
    std::sort(accepted_b.begin(), accepted_b.end());
    ASSERT_EQ(accepted_a.size(), accepted_b.size());
    for (size_t i = 0; i < accepted_a.size(); ++i) {
      for (size_t j = 0; j < accepted_a[i].size(); ++j) {
        EXPECT_NEAR(accepted_a[i][j], accepted_b[i][j],
                    1e-9 * std::max(1.0, std::abs(accepted_a[i][j])));
      }
    }
  }
}

TEST(MetamorphicTest, NonFirstPointOrderIrrelevant) {
  // With all representatives up front, permuting the remaining points
  // cannot change the accept/reject sets (they are all candidate-group
  // members and are skipped regardless of order).
  const NoisyDataset data = MakeData(11);
  const RepresentativeStream reps = ExtractRepresentatives(data);
  std::vector<Point> rest;
  {
    std::vector<bool> is_rep(data.points.size(), false);
    for (uint64_t idx : reps.stream_index) is_rep[idx] = true;
    for (size_t i = 0; i < data.points.size(); ++i) {
      if (!is_rep[i]) rest.push_back(data.points[i]);
    }
  }
  auto run = [&](const std::vector<Point>& tail) {
    auto sampler = RobustL0SamplerIW::Create(BaseOptions(13)).value();
    for (const Point& p : reps.points) sampler.Insert(p);
    for (const Point& p : tail) sampler.Insert(p);
    return std::make_tuple(AcceptedSet(sampler), sampler.level(),
                           sampler.reject_size());
  };
  const auto forward = run(rest);
  std::vector<Point> reversed(rest.rbegin(), rest.rend());
  const auto backward = run(reversed);
  Xoshiro256pp rng(15);
  std::vector<Point> shuffled = rest;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
  }
  const auto random_order = run(shuffled);
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(forward, random_order);
}

TEST(MetamorphicTest, AdversarialOrdersKeepInvariants) {
  const NoisyDataset data = MakeData(17, 150);
  std::vector<std::vector<Point>> orders;
  orders.push_back(data.points);  // shuffled (generator default)
  // Sorted by first coordinate (groups arrive in spatial order).
  std::vector<Point> sorted = data.points;
  std::sort(sorted.begin(), sorted.end(),
            [](const Point& a, const Point& b) { return a[0] < b[0]; });
  orders.push_back(sorted);
  // Reverse-sorted.
  std::vector<Point> reversed(sorted.rbegin(), sorted.rend());
  orders.push_back(reversed);
  // Bursts: all points of each group consecutively (no shuffle).
  for (const auto& order : orders) {
    auto sampler = RobustL0SamplerIW::Create(BaseOptions(19)).value();
    for (const Point& p : order) {
      sampler.Insert(p);
      ASSERT_LE(sampler.accept_size(), 12u);
      ASSERT_GE(sampler.accept_size(), 1u);
    }
    // One stored entry per group at most.
    EXPECT_LE(sampler.accept_size() + sampler.reject_size(),
              data.num_groups);
  }
}

TEST(MetamorphicTest, WindowPaddingDoesNotChangeAliveSampling) {
  // Appending points that immediately expire (stamps far in the past are
  // not allowed; instead: querying at `now` after inserting only expired-
  // by-now points) — the sample over the alive suffix stays valid.
  SamplerOptions opts = BaseOptions(21, 1);
  auto sampler = RobustL0SamplerSW::Create(opts, 8).value();
  for (int i = 0; i < 100; ++i) {
    sampler.Insert(Point{10.0 * i}, i);
  }
  Xoshiro256pp rng(23);
  for (int q = 0; q < 100; ++q) {
    const auto sample = sampler.Sample(99, &rng);
    ASSERT_TRUE(sample.has_value());
    EXPECT_GE(sample->point[0], 10.0 * 92);  // only the last 8 are alive
  }
}

/// Canonical view of a fixed-rate sampler's groups: every field except
/// the (arrival-order-dependent) group id, sorted.
std::vector<std::tuple<int64_t, uint64_t, uint64_t, bool, std::vector<double>,
                       std::vector<double>>>
CanonicalGroups(const SwFixedRateSampler& sampler) {
  std::vector<GroupRecord> groups;
  sampler.SnapshotGroups(&groups);
  std::vector<std::tuple<int64_t, uint64_t, uint64_t, bool,
                         std::vector<double>, std::vector<double>>>
      out;
  for (const GroupRecord& g : groups) {
    out.emplace_back(g.latest_stamp, g.latest_index, g.rep_index, g.accepted,
                     g.rep.coords(), g.latest.coords());
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(MetamorphicTest, SwStampTiesPermutationInvariant) {
  // Time-based windows allow equal stamps. Permuting the arrival order
  // *within* a run of equal-stamp points of well-separated groups must
  // leave the fixed-rate sampler's state unchanged up to group-id
  // renumbering: each group's own subsequence is untouched, and
  // cross-group candidate lookups cannot match across a >α separation.
  // (The hierarchy is deliberately out of scope: its lower-level pruning
  // depends on intra-tie order by design.)
  SamplerOptions opts = BaseOptions(31, 1);
  auto a = SwFixedRateSampler::CreateStandalone(opts, 0, 40).value();
  auto b = SwFixedRateSampler::CreateStandalone(opts, 0, 40).value();

  Xoshiro256pp rng(32);
  int64_t stamp = 0;
  for (int run = 0; run < 120; ++run) {
    // A tie of 2-6 points from distinct groups at one stamp.
    const size_t tie = 2 + rng.NextBounded(5);
    std::vector<Point> batch;
    std::vector<size_t> groups_in_tie;
    for (size_t i = 0; i < tie; ++i) {
      size_t g;
      do {
        g = rng.NextBounded(25);
      } while (std::find(groups_in_tie.begin(), groups_in_tie.end(), g) !=
               groups_in_tie.end());
      groups_in_tie.push_back(g);
      batch.push_back(Point{10.0 * static_cast<double>(g) +
                            0.3 * (rng.NextDouble() - 0.5)});
    }
    for (const Point& p : batch) a->Insert(p, stamp);
    // Reversed tie order into b.
    for (size_t i = batch.size(); i-- > 0;) b->Insert(batch[i], stamp);
    stamp += static_cast<int64_t>(rng.NextBounded(15));
    ASSERT_EQ(CanonicalGroups(*a), CanonicalGroups(*b)) << "run " << run;
  }
}

TEST(MetamorphicTest, SwShrinkingWindowNeverResurrectsExpiredGroups) {
  // A group invisible under window W must stay invisible under any
  // W' < W: at rate 1 the live sets nest (latest stamp in (now-W', now]
  // implies latest stamp in (now-W, now]), and each surviving group
  // reports the same latest point under both windows.
  SamplerOptions opts = BaseOptions(33, 1);
  const int64_t wide_window = 200;
  const int64_t narrow_window = 50;
  auto wide =
      SwFixedRateSampler::CreateStandalone(opts, 0, wide_window).value();
  auto narrow =
      SwFixedRateSampler::CreateStandalone(opts, 0, narrow_window).value();

  Xoshiro256pp rng(34);
  int64_t stamp = 0;
  for (int i = 0; i < 600; ++i) {
    const size_t g = rng.NextBounded(40);
    const Point p{10.0 * static_cast<double>(g) +
                  0.3 * (rng.NextDouble() - 0.5)};
    wide->Insert(p, stamp);
    narrow->Insert(p, stamp);
    stamp += static_cast<int64_t>(rng.NextBounded(4));
    if (i % 20 != 19) continue;

    std::vector<GroupRecord> wide_groups, narrow_groups;
    wide->Expire(stamp);
    narrow->Expire(stamp);
    wide->SnapshotGroups(&wide_groups);
    narrow->SnapshotGroups(&narrow_groups);
    // Nesting by the group's latest point (group ids differ when a group
    // expired under W' and was re-established later).
    std::set<uint64_t> wide_latest;
    for (const GroupRecord& g2 : wide_groups) {
      wide_latest.insert(g2.latest_index);
    }
    for (const GroupRecord& g2 : narrow_groups) {
      EXPECT_TRUE(wide_latest.count(g2.latest_index))
          << "group alive under W'=" << narrow_window
          << " but resurrected relative to W=" << wide_window << " at i="
          << i;
      // And it is genuinely alive under the narrow window.
      EXPECT_GT(g2.latest_stamp, stamp - narrow_window);
    }
    EXPECT_LE(narrow_groups.size(), wide_groups.size());
  }
}

TEST(MetamorphicTest, SeedChangesDecisionsButNotUniverse) {
  // Different seeds give different accept subsets but identical candidate
  // universes at rate 1 (every group judged identically when R=1).
  const NoisyDataset data = MakeData(25, 30);
  SamplerOptions opts = BaseOptions(27);
  opts.accept_cap = 1000;  // keep R = 1
  auto a = RobustL0SamplerIW::Create(opts).value();
  opts.seed = 28;
  auto b = RobustL0SamplerIW::Create(opts).value();
  for (const Point& p : data.points) {
    a.Insert(p);
    b.Insert(p);
  }
  // At R=1 every group is accepted under any seed.
  EXPECT_EQ(a.accept_size(), 30u);
  EXPECT_EQ(b.accept_size(), 30u);
  EXPECT_EQ(AcceptedSet(a), AcceptedSet(b));
}

// ---------------------------------------------------------------------
// Bounded-lateness arrival-order invariance (core/reorder_buffer.h).
//
// The reorder stage's contract: for ANY arrival order in which every
// stamp runs at most `allowed_lateness` behind the running maximum, the
// released sequence — and hence all downstream per-lane state, coin
// streams, and snapshot bytes — is bit-identical to feeding the
// canonically sorted stream through the strict path. The in-bound
// arrival orders are generated by DisorderWithinBound/DisorderSkewed
// (provably bounded; pinned in tests/reorder_test.cc) under varying
// seeds.
// ---------------------------------------------------------------------

namespace {

/// A time-stamped revisit stream over near-duplicate groups.
std::vector<StampedPoint> LatenessStream(size_t n, uint64_t seed) {
  const NoisyDataset data = MakeData(seed, 40);
  std::vector<StampedPoint> out;
  Xoshiro256pp rng(SplitMix64(seed + 100));
  int64_t now = 0;
  for (size_t i = 0; i < n; ++i) {
    now += 1 + static_cast<int64_t>(rng.NextBounded(3));
    StampedPoint sp;
    sp.point = data.points[rng.NextBounded(data.points.size())];
    sp.stamp = now;
    out.push_back(sp);
  }
  return out;
}

SamplerOptions LatenessOptions(uint64_t seed, int64_t lateness) {
  SamplerOptions opts = BaseOptions(seed);
  opts.allowed_lateness = lateness;
  return opts;
}

}  // namespace

TEST(MetamorphicTest, SwArrivalOrderWithinBoundIsInvariantSerial) {
  constexpr int64_t kLateness = 32;
  constexpr int64_t kWindow = 64;
  const std::vector<StampedPoint> stream = LatenessStream(1200, 41);
  std::vector<Point> sorted_points;
  std::vector<int64_t> sorted_stamps;
  SplitStamped(stream, &sorted_points, &sorted_stamps);
  ReorderStage::SortCanonical(&sorted_points, &sorted_stamps);

  // Strict reference: the canonically sorted stream, strict inserts.
  auto reference =
      RobustL0SamplerSW::Create(LatenessOptions(43, kLateness), kWindow)
          .value();
  for (size_t i = 0; i < sorted_points.size(); ++i) {
    reference.Insert(sorted_points[i], sorted_stamps[i]);
  }
  std::string reference_blob;
  ASSERT_TRUE(SnapshotSamplerSW(reference, &reference_blob).ok());
  std::vector<SampleItem> reference_accepted;
  reference.AcceptedWindowItems(reference.latest_stamp(),
                                &reference_accepted);

  for (int perm = 0; perm < 5; ++perm) {
    SCOPED_TRACE("permutation " + std::to_string(perm));
    const std::vector<StampedPoint> arrival =
        perm % 2 == 0 ? DisorderWithinBound(stream, kLateness, 500 + perm)
                      : DisorderSkewed(stream, kLateness, 500 + perm);
    std::vector<Point> points;
    std::vector<int64_t> stamps;
    SplitStamped(arrival, &points, &stamps);

    auto late_fed =
        RobustL0SamplerSW::Create(LatenessOptions(43, kLateness), kWindow)
            .value();
    for (size_t i = 0; i < points.size(); ++i) {
      late_fed.InsertStampedLate(points[i], stamps[i]);
    }
    late_fed.FlushLate();
    EXPECT_EQ(late_fed.late_stats().late_dropped, 0u);

    // Snapshot bytes: bit-identical state (reservoirs, coin streams,
    // stamp lists — everything serialized).
    std::string blob;
    ASSERT_TRUE(SnapshotSamplerSW(late_fed, &blob).ok());
    EXPECT_EQ(blob, reference_blob);

    // Accepted window set and reservoir-backed draws.
    std::vector<SampleItem> accepted;
    late_fed.AcceptedWindowItems(late_fed.watermark(), &accepted);
    ASSERT_EQ(accepted.size(), reference_accepted.size());
    for (size_t i = 0; i < accepted.size(); ++i) {
      EXPECT_EQ(accepted[i].point, reference_accepted[i].point);
      EXPECT_EQ(accepted[i].stream_index,
                reference_accepted[i].stream_index);
    }
    Xoshiro256pp rng_a(SplitMix64(7));
    Xoshiro256pp rng_b(SplitMix64(7));
    for (int q = 0; q < 8; ++q) {
      const auto a = late_fed.SampleLatest(&rng_a);
      const auto b = reference.SampleLatest(&rng_b);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a.has_value()) {
        EXPECT_EQ(a->point, b->point);
        EXPECT_EQ(a->stream_index, b->stream_index);
      }
    }
  }
}

TEST(MetamorphicTest, SwArrivalOrderWithinBoundIsInvariantSharded) {
  constexpr int64_t kLateness = 24;
  constexpr int64_t kWindow = 96;
  const std::vector<StampedPoint> stream = LatenessStream(900, 47);
  std::vector<Point> sorted_points;
  std::vector<int64_t> sorted_stamps;
  SplitStamped(stream, &sorted_points, &sorted_stamps);
  ReorderStage::SortCanonical(&sorted_points, &sorted_stamps);

  Xoshiro256pp chunk_rng(SplitMix64(321));
  for (const size_t lanes : {1u, 2u, 8u}) {
    SCOPED_TRACE(std::to_string(lanes) + " lanes");
    // Strict reference pool: the sorted stream in one stamped feed.
    auto reference =
        ShardedSwSamplerPool::Create(LatenessOptions(49, kLateness), kWindow,
                                     lanes)
            .value();
    reference.FeedStamped(Span<const Point>(sorted_points),
                          Span<const int64_t>(sorted_stamps));
    reference.Drain();
    std::vector<std::string> reference_blobs(lanes);
    for (size_t s = 0; s < lanes; ++s) {
      ASSERT_TRUE(
          SnapshotSamplerSW(reference.shard(s), &reference_blobs[s]).ok());
    }

    for (int perm = 0; perm < 3; ++perm) {
      SCOPED_TRACE("permutation " + std::to_string(perm));
      const std::vector<StampedPoint> arrival =
          DisorderWithinBound(stream, kLateness, 900 + perm);
      std::vector<Point> points;
      std::vector<int64_t> stamps;
      SplitStamped(arrival, &points, &stamps);

      auto pool = ShardedSwSamplerPool::Create(LatenessOptions(49, kLateness),
                                               kWindow, lanes)
                      .value();
      // Random chunking of the late feed: chunk boundaries must not
      // matter either.
      const Span<const Point> all_points(points);
      const Span<const int64_t> all_stamps(stamps);
      size_t offset = 0;
      while (offset < points.size()) {
        const size_t len = 1 + chunk_rng.NextBounded(257);
        pool.FeedStampedLate(all_points.subspan(offset, len),
                             all_stamps.subspan(offset, len));
        offset += len;
      }
      pool.FlushLate();
      pool.Drain();
      EXPECT_EQ(pool.late_stats().late_dropped, 0u);
      EXPECT_EQ(pool.late_stats().released, points.size());

      for (size_t s = 0; s < lanes; ++s) {
        SCOPED_TRACE("shard " + std::to_string(s));
        std::string blob;
        ASSERT_TRUE(SnapshotSamplerSW(pool.shard(s), &blob).ok());
        EXPECT_EQ(blob, reference_blobs[s]);
      }
      Xoshiro256pp rng_a(SplitMix64(11));
      Xoshiro256pp rng_b(SplitMix64(11));
      for (int q = 0; q < 8; ++q) {
        const auto a = pool.SampleLatest(&rng_a);
        const auto b = reference.SampleLatest(&rng_b);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a.has_value()) {
          EXPECT_EQ(a->point, b->point);
          EXPECT_EQ(a->stream_index, b->stream_index);
        }
      }
    }
  }
}

}  // namespace
}  // namespace rl0
