// Concurrency stress for the persistent ingestion pipeline. Run under
// ThreadSanitizer in CI (see .github/workflows/ci.yml, job `tsan`): the
// assertions here check exactly-once accounting; TSan checks the
// happens-before edges of the queue handoffs, the Drain barrier and the
// quiesced merge/snapshot path.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "rl0/core/ingest_pool.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/core/snapshot.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"
#include "rl0/util/bounded_queue.h"

namespace rl0 {
namespace {

NoisyDataset StressData(uint64_t seed, size_t groups) {
  const BaseDataset base = RandomUniform(groups, 3, seed, "Stress");
  NearDupOptions nd;
  nd.max_dups = 12;
  nd.seed = seed + 1;
  return MakeNearDuplicates(base, nd);
}

SamplerOptions StressOptions(const NoisyDataset& data, uint64_t seed) {
  SamplerOptions opts;
  opts.dim = data.dim;
  opts.alpha = data.alpha;
  opts.seed = seed;
  opts.side_mode = GridSideMode::kHighDim;
  opts.expected_stream_length = data.size();
  return opts;
}

TEST(PipelineStressTest, MultiProducerFeedCountsEveryPointExactlyOnce) {
  const NoisyDataset data = StressData(61, 80);
  SamplerOptions opts = StressOptions(data, 62);
  opts.accept_cap = 1 << 20;  // rate 1: merged must cover every group
  IngestPool::Options pipeline;
  pipeline.queue_capacity = 2;  // small window: exercise backpressure
  auto pool = ShardedSamplerPool::Create(opts, 4, pipeline).value();

  const size_t producers = 4;
  const Span<const Point> all(data.points);
  const size_t slice = all.size() / producers;
  std::vector<std::thread> feeders;
  for (size_t t = 0; t < producers; ++t) {
    const size_t begin = t * slice;
    const size_t count = t + 1 == producers ? all.size() - begin : slice;
    feeders.emplace_back([&pool, all, begin, count] {
      // Many small chunks per producer: chunk interleaving across
      // producers is scheduler-dependent, totals must not be.
      const size_t chunk = 37;
      for (size_t offset = 0; offset < count; offset += chunk) {
        const size_t n = offset + chunk > count ? count - offset : chunk;
        pool.Feed(all.subspan(begin + offset, n));
      }
    });
  }
  for (std::thread& f : feeders) f.join();
  pool.Drain();

  EXPECT_EQ(pool.points_fed(), data.points.size());
  EXPECT_EQ(pool.points_processed(), data.points.size());
  // Chunk order is nondeterministic, but at rate 1 the merged accept set
  // still holds exactly one representative per group.
  auto merged = pool.Merged().value();
  EXPECT_EQ(merged.level(), 0u);
  EXPECT_EQ(merged.accept_size(), data.num_groups);
}

TEST(PipelineStressTest, ConcurrentDrainAndQuiescedSnapshot) {
  const NoisyDataset data = StressData(71, 60);
  SamplerOptions opts = StressOptions(data, 72);
  auto pool = ShardedSamplerPool::Create(opts, 3).value();

  std::atomic<bool> feeding{true};
  const Span<const Point> all(data.points);

  std::vector<std::thread> feeders;
  for (size_t t = 0; t < 2; ++t) {
    const size_t begin = t * (all.size() / 2);
    const size_t count = t == 0 ? all.size() / 2 : all.size() - begin;
    feeders.emplace_back([&pool, all, begin, count] {
      const size_t chunk = 53;
      for (size_t offset = 0; offset < count; offset += chunk) {
        const size_t n = offset + chunk > count ? count - offset : chunk;
        pool.Feed(all.subspan(begin + offset, n));
      }
    });
  }

  // Drainers: Drain is a barrier on everything fed before the call and
  // must be safe from any number of threads, concurrently with feeding.
  std::vector<std::thread> drainers;
  for (int t = 0; t < 2; ++t) {
    drainers.emplace_back([&pool, &feeding] {
      while (feeding.load(std::memory_order_relaxed)) {
        pool.Drain();
      }
    });
  }

  // Snapshotter: MergedQuiesced pauses the workers between chunks, so a
  // consistent (prefix-per-shard) merged sampler can be checkpointed
  // while the stream is still flowing.
  std::thread snapshotter([&pool, &feeding] {
    int round_trips = 0;
    while (feeding.load(std::memory_order_relaxed) || round_trips == 0) {
      auto merged = pool.MergedQuiesced();
      ASSERT_TRUE(merged.ok());
      std::string blob;
      ASSERT_TRUE(SnapshotSampler(merged.value(), &blob).ok());
      auto restored = RestoreSampler(blob);
      ASSERT_TRUE(restored.ok());
      EXPECT_EQ(restored.value().accept_size(), merged.value().accept_size());
      ++round_trips;
    }
    EXPECT_GT(round_trips, 0);
  });

  for (std::thread& f : feeders) f.join();
  feeding.store(false, std::memory_order_relaxed);
  for (std::thread& d : drainers) d.join();
  snapshotter.join();

  pool.Drain();
  EXPECT_EQ(pool.points_processed(), data.points.size());
}

TEST(PipelineStressTest, SwPoolConcurrentDrainAndQuiescedSnapshot) {
  // The windowed pool under the same contention pattern: multi-producer
  // feeding, concurrent Drain barriers, and a snapshotter that samples
  // the live window and checkpoints a shard (SnapshotSamplerSW) while
  // the workers are paused between chunks. Stamps are global stream
  // positions, so totals — and each lane's trajectory — must come out
  // scheduler-independent. Runs under TSan in CI.
  const NoisyDataset data = StressData(91, 60);
  SamplerOptions opts = StressOptions(data, 92);
  const int64_t window = static_cast<int64_t>(data.size() / 3);
  IngestPool::Options pipeline;
  pipeline.queue_capacity = 2;  // exercise backpressure
  auto pool = ShardedSwSamplerPool::Create(opts, window, 3, pipeline).value();

  std::atomic<bool> feeding{true};
  const Span<const Point> all(data.points);

  std::vector<std::thread> feeders;
  for (size_t t = 0; t < 2; ++t) {
    const size_t begin = t * (all.size() / 2);
    const size_t count = t == 0 ? all.size() / 2 : all.size() - begin;
    feeders.emplace_back([&pool, all, begin, count] {
      const size_t chunk = 53;
      for (size_t offset = 0; offset < count; offset += chunk) {
        const size_t n = offset + chunk > count ? count - offset : chunk;
        pool.Feed(all.subspan(begin + offset, n));
      }
    });
  }

  std::vector<std::thread> drainers;
  for (int t = 0; t < 2; ++t) {
    drainers.emplace_back([&pool, &feeding] {
      while (feeding.load(std::memory_order_relaxed)) {
        pool.Drain();
      }
    });
  }

  std::thread snapshotter([&pool, &feeding] {
    int round_trips = 0;
    Xoshiro256pp rng(93);
    while (feeding.load(std::memory_order_relaxed) || round_trips == 0) {
      // A quiesced live-window sample (each shard at its own prefix)...
      (void)pool.SampleQuiesced(&rng);
      // ...and a quiesced checkpoint of shard 0 that must round-trip.
      std::string blob;
      Status status = Status::OK();
      uint64_t processed_at_pause = 0;
      pool.QuiescedRun([&pool, &blob, &status, &processed_at_pause] {
        processed_at_pause = pool.shard(0).points_processed();
        status = SnapshotSamplerSW(pool.shard(0), &blob);
      });
      ASSERT_TRUE(status.ok());
      auto restored = RestoreSamplerSW(blob);
      ASSERT_TRUE(restored.ok());
      EXPECT_EQ(restored.value().points_processed(), processed_at_pause);
      ++round_trips;
    }
    EXPECT_GT(round_trips, 0);
  });

  for (std::thread& f : feeders) f.join();
  feeding.store(false, std::memory_order_relaxed);
  for (std::thread& d : drainers) d.join();
  snapshotter.join();

  pool.Drain();
  EXPECT_EQ(pool.points_fed(), data.points.size());
  EXPECT_EQ(pool.points_processed(), data.points.size());
  // After the barrier the merged window view is live and non-empty.
  EXPECT_FALSE(pool.MergedWindowItems(pool.now()).empty());
}

TEST(PipelineStressTest, SwPoolConcurrentStampedFeedAndQuiescedSnapshot) {
  // The stamped-chunk (time-based) pipeline under contention: one
  // time-ordered producer (explicit stamps must be monotone in enqueue
  // order, so a single source feeds — the realistic shape of an
  // event-time stream), concurrent Drain barriers, and a snapshotter
  // that samples the live window (SampleQuiesced) and checkpoints a
  // shard (SnapshotSamplerSW) while the workers are paused between
  // chunks. The stamp arrays ride the chunks, so totals — and each
  // lane's trajectory — must come out scheduler-independent. Runs under
  // TSan in CI (job `tsan` matches pipeline_stress).
  const NoisyDataset data = StressData(101, 60);
  SamplerOptions opts = StressOptions(data, 102);
  std::vector<int64_t> stamps;
  stamps.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    stamps.push_back(static_cast<int64_t>(3 * i + (i % 2)));
  }
  const int64_t window = static_cast<int64_t>(data.size());  // time units
  IngestPool::Options pipeline;
  pipeline.queue_capacity = 2;  // exercise backpressure
  auto pool = ShardedSwSamplerPool::Create(opts, window, 3, pipeline).value();

  std::atomic<bool> feeding{true};
  const Span<const Point> all(data.points);
  const Span<const int64_t> all_stamps(stamps);

  std::thread feeder([&pool, all, all_stamps] {
    const size_t chunk = 53;
    for (size_t offset = 0; offset < all.size(); offset += chunk) {
      const size_t n =
          offset + chunk > all.size() ? all.size() - offset : chunk;
      pool.FeedStamped(all.subspan(offset, n), all_stamps.subspan(offset, n));
    }
  });

  std::vector<std::thread> drainers;
  for (int t = 0; t < 2; ++t) {
    drainers.emplace_back([&pool, &feeding] {
      while (feeding.load(std::memory_order_relaxed)) {
        pool.Drain();
      }
    });
  }

  std::thread snapshotter([&pool, &feeding] {
    int round_trips = 0;
    Xoshiro256pp rng(103);
    while (feeding.load(std::memory_order_relaxed) || round_trips == 0) {
      (void)pool.SampleQuiesced(&rng);
      std::string blob;
      Status status = Status::OK();
      uint64_t processed_at_pause = 0;
      pool.QuiescedRun([&pool, &blob, &status, &processed_at_pause] {
        processed_at_pause = pool.shard(0).points_processed();
        status = SnapshotSamplerSW(pool.shard(0), &blob);
      });
      ASSERT_TRUE(status.ok());
      auto restored = RestoreSamplerSW(blob);
      ASSERT_TRUE(restored.ok());
      EXPECT_EQ(restored.value().points_processed(), processed_at_pause);
      ++round_trips;
    }
    EXPECT_GT(round_trips, 0);
  });

  feeder.join();
  feeding.store(false, std::memory_order_relaxed);
  for (std::thread& d : drainers) d.join();
  snapshotter.join();

  pool.Drain();
  EXPECT_EQ(pool.points_fed(), data.points.size());
  EXPECT_EQ(pool.points_processed(), data.points.size());
  EXPECT_EQ(pool.now(), stamps.back());
  // After the barrier the merged window view is live and non-empty, and
  // no reported member's stamp has expired.
  const std::vector<SampleItem> merged = pool.MergedWindowItems(pool.now());
  ASSERT_FALSE(merged.empty());
  for (const SampleItem& item : merged) {
    ASSERT_LT(item.stream_index, stamps.size());
    EXPECT_GT(stamps[item.stream_index], pool.now() - window);
  }
}

TEST(PipelineStressTest, SwPoolMultiProducerLateFeedAccountsEveryPoint) {
  // The bounded-lateness front-end under contention: several producers
  // feed disordered stamped slices through FeedStampedLate (the pool's
  // reorder stage serializes the offer → release → watermark pump),
  // concurrent Drain barriers, and a snapshotter that samples and
  // checkpoints a quiesced shard mid-stream. Producer interleaving is
  // scheduler-dependent, so points of a slow producer may land beyond
  // the bound — the side-channel policy guarantees they are never
  // silently lost: after FlushLate + Drain, released + redirected must
  // reconcile exactly with the input size, whatever the schedule. Runs
  // under TSan in CI (job `tsan` matches pipeline_stress).
  const NoisyDataset data = StressData(151, 60);
  SamplerOptions opts = StressOptions(data, 152);
  opts.allowed_lateness = 64;
  opts.late_policy = LatePolicy::kSideChannel;
  std::vector<int64_t> stamps;
  stamps.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    // A jittered clock: stamps run up to 32 time units behind 2·i, so a
    // single-producer arrival order stays within the 64-unit bound and
    // only cross-producer interleaving can push points beyond it.
    stamps.push_back(static_cast<int64_t>(2 * i) -
                     static_cast<int64_t>(SplitMix64(i) % 33));
  }
  int64_t max_stamp = stamps[0];
  for (int64_t s : stamps) max_stamp = std::max(max_stamp, s);
  const int64_t window = static_cast<int64_t>(2 * data.size());
  IngestPool::Options pipeline;
  pipeline.queue_capacity = 2;  // exercise backpressure
  auto pool = ShardedSwSamplerPool::Create(opts, window, 3, pipeline).value();

  std::atomic<bool> feeding{true};
  const Span<const Point> all(data.points);
  const Span<const int64_t> all_stamps(stamps);

  const size_t producers = 4;
  const size_t slice = all.size() / producers;
  std::vector<std::thread> feeders;
  for (size_t t = 0; t < producers; ++t) {
    const size_t begin = t * slice;
    const size_t count = t + 1 == producers ? all.size() - begin : slice;
    feeders.emplace_back([&pool, all, all_stamps, begin, count] {
      const size_t chunk = 47;
      for (size_t offset = begin; offset < begin + count; offset += chunk) {
        const size_t n = std::min(chunk, begin + count - offset);
        pool.FeedStampedLate(all.subspan(offset, n),
                             all_stamps.subspan(offset, n));
      }
    });
  }

  std::vector<std::thread> drainers;
  for (int t = 0; t < 2; ++t) {
    drainers.emplace_back([&pool, &feeding] {
      while (feeding.load(std::memory_order_relaxed)) {
        pool.Drain();
      }
    });
  }

  std::thread snapshotter([&pool, &feeding] {
    int round_trips = 0;
    Xoshiro256pp rng(153);
    while (feeding.load(std::memory_order_relaxed) || round_trips == 0) {
      (void)pool.SampleQuiesced(&rng);
      std::string blob;
      Status status = Status::OK();
      uint64_t processed_at_pause = 0;
      pool.QuiescedRun([&pool, &blob, &status, &processed_at_pause] {
        processed_at_pause = pool.shard(0).points_processed();
        status = SnapshotSamplerSW(pool.shard(0), &blob);
      });
      ASSERT_TRUE(status.ok());
      auto restored = RestoreSamplerSW(blob);
      ASSERT_TRUE(restored.ok());
      EXPECT_EQ(restored.value().points_processed(), processed_at_pause);
      ++round_trips;
    }
    EXPECT_GT(round_trips, 0);
  });

  for (std::thread& f : feeders) f.join();
  feeding.store(false, std::memory_order_relaxed);
  for (std::thread& d : drainers) d.join();
  snapshotter.join();

  pool.FlushLate();
  pool.Drain();
  const auto late = pool.TakeLateSideChannel();
  const ReorderStats stats = pool.late_stats();
  EXPECT_EQ(stats.offered, data.size());
  EXPECT_EQ(stats.buffered, 0u);
  EXPECT_EQ(stats.late_dropped, 0u);
  EXPECT_EQ(stats.late_redirected, late.size());
  EXPECT_EQ(stats.released + stats.late_redirected, data.size());
  EXPECT_EQ(pool.points_processed(), stats.released);
  EXPECT_EQ(pool.now(), max_stamp);
  // Every side-channel delivery kept its stamp, and each really was
  // beyond the bound relative to the maximum stamp (a conservative
  // check: the true frontier at its arrival was at most this).
  for (const auto& entry : late) {
    EXPECT_LT(entry.second, max_stamp - opts.allowed_lateness);
  }
}

TEST(PipelineStressTest, StopWithBacklogProcessesEverything) {
  // Destroying the pool (Stop) must consume the queued backlog, not drop
  // it: feeding then immediately destructing loses nothing.
  const NoisyDataset data = StressData(81, 40);
  SamplerOptions opts = StressOptions(data, 82);
  uint64_t processed = 0;
  {
    IngestPool::Options pipeline;
    pipeline.queue_capacity = 2;
    auto pool = ShardedSamplerPool::Create(opts, 2, pipeline).value();
    const Span<const Point> all(data.points);
    const size_t chunk = 64;
    for (size_t offset = 0; offset < all.size(); offset += chunk) {
      pool.Feed(all.subspan(offset, chunk));
    }
    pool.Drain();
    processed = pool.points_processed();
  }  // ~ShardedSamplerPool -> IngestPool::Stop
  EXPECT_EQ(processed, data.points.size());
}

TEST(PipelineStressTest, BoundedQueueMultiProducerExactlyOnce) {
  BoundedQueue<int> queue(3);
  const int producers = 4;
  const int per_producer = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < producers; ++t) {
    workers.emplace_back([&queue, t] {
      for (int i = 0; i < per_producer; ++i) {
        ASSERT_TRUE(queue.Push(t * per_producer + i));
      }
    });
  }
  std::vector<char> seen(producers * per_producer, 0);
  std::thread consumer([&queue, &seen] {
    int item;
    while (queue.Pop(&item)) {
      ASSERT_GE(item, 0);
      ASSERT_LT(item, static_cast<int>(seen.size()));
      seen[item] += 1;
    }
  });
  for (std::thread& w : workers) w.join();
  queue.Close();
  consumer.join();
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "item " << i;
  }
}

TEST(PipelineStressTest, BoundedQueueCloseDrainsThenStops) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_FALSE(queue.Push(3));
  EXPECT_FALSE(queue.TryPush(4));
  int item = 0;
  EXPECT_TRUE(queue.Pop(&item));
  EXPECT_EQ(item, 1);
  EXPECT_TRUE(queue.Pop(&item));
  EXPECT_EQ(item, 2);
  EXPECT_FALSE(queue.Pop(&item));  // closed and drained
}

}  // namespace
}  // namespace rl0
