// Tests for the Minkowski metric generalization (paper Section 7 future
// work): distances, metric-aware grid adjacency (DFS == naive for L1/L∞),
// and end-to-end sampling where groups are defined by L1/L∞ balls.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "rl0/core/iw_sampler.h"
#include "rl0/geom/metric.h"
#include "rl0/grid/random_grid.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

TEST(MetricTest, KnownDistances) {
  const Point a{0.0, 0.0};
  const Point b{3.0, -4.0};
  EXPECT_DOUBLE_EQ(MetricDistance(a, b, Metric::kL2), 5.0);
  EXPECT_DOUBLE_EQ(MetricDistance(a, b, Metric::kL1), 7.0);
  EXPECT_DOUBLE_EQ(MetricDistance(a, b, Metric::kLinf), 4.0);
}

TEST(MetricTest, OrderingL1GeL2GeLinf) {
  Xoshiro256pp rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    Point a(4), b(4);
    for (size_t j = 0; j < 4; ++j) {
      a[j] = rng.NextDouble() * 10 - 5;
      b[j] = rng.NextDouble() * 10 - 5;
    }
    const double l1 = MetricDistance(a, b, Metric::kL1);
    const double l2 = MetricDistance(a, b, Metric::kL2);
    const double linf = MetricDistance(a, b, Metric::kLinf);
    EXPECT_GE(l1, l2 - 1e-12);
    EXPECT_GE(l2, linf - 1e-12);
  }
}

TEST(MetricTest, WithinDistanceInclusive) {
  const Point a{0.0};
  const Point b{2.0};
  for (Metric m : {Metric::kL2, Metric::kL1, Metric::kLinf}) {
    EXPECT_TRUE(MetricWithinDistance(a, b, 2.0, m)) << MetricName(m);
    EXPECT_FALSE(MetricWithinDistance(a, b, 1.999, m)) << MetricName(m);
  }
}

TEST(MetricTest, Names) {
  EXPECT_STREQ(MetricName(Metric::kL2), "l2");
  EXPECT_STREQ(MetricName(Metric::kL1), "l1");
  EXPECT_STREQ(MetricName(Metric::kLinf), "linf");
}

class MetricAdjacency
    : public ::testing::TestWithParam<std::tuple<Metric, int, double>> {};

TEST_P(MetricAdjacency, DfsMatchesNaive) {
  const auto [metric, dim, side] = GetParam();
  RandomGrid grid(static_cast<size_t>(dim), side, 17 + dim, metric);
  Xoshiro256pp rng(23 * dim);
  for (int trial = 0; trial < 40; ++trial) {
    Point p(static_cast<size_t>(dim));
    for (int j = 0; j < dim; ++j) {
      p[static_cast<size_t>(j)] = 20.0 * (rng.NextDouble() - 0.5);
    }
    std::vector<uint64_t> dfs, naive;
    grid.AdjacentCells(p, 1.0, &dfs);
    grid.AdjacentCellsNaive(p, 1.0, &naive);
    EXPECT_EQ(dfs, naive) << MetricName(metric) << " dim=" << dim
                          << " side=" << side << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetricAdjacency,
    ::testing::Values(std::make_tuple(Metric::kL1, 2, 0.5),
                      std::make_tuple(Metric::kL1, 3, 1.5),
                      std::make_tuple(Metric::kL1, 5, 5.0),
                      std::make_tuple(Metric::kLinf, 2, 0.5),
                      std::make_tuple(Metric::kLinf, 3, 1.5),
                      std::make_tuple(Metric::kLinf, 5, 5.0)),
    [](const auto& info) {
      return std::string(MetricName(std::get<0>(info.param))) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 10));
    });

TEST(MetricAdjacencyTest, LinfBallIsLargerThanL2Ball) {
  // adj sets grow with the metric's ball: L∞ ⊇ L2 ⊇ L1 at equal radius.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    RandomGrid l1(3, 0.8, seed, Metric::kL1);
    RandomGrid l2(3, 0.8, seed, Metric::kL2);
    RandomGrid linf(3, 0.8, seed, Metric::kLinf);
    // Same seed => same offsets => comparable cell sets.
    const Point p{0.3, 0.4, 0.5};
    std::vector<uint64_t> a1, a2, ainf;
    l1.AdjacentCells(p, 1.0, &a1);
    l2.AdjacentCells(p, 1.0, &a2);
    linf.AdjacentCells(p, 1.0, &ainf);
    EXPECT_LE(a1.size(), a2.size());
    EXPECT_LE(a2.size(), ainf.size());
    for (uint64_t key : a1) {
      EXPECT_TRUE(std::find(a2.begin(), a2.end(), key) != a2.end());
    }
    for (uint64_t key : a2) {
      EXPECT_TRUE(std::find(ainf.begin(), ainf.end(), key) != ainf.end());
    }
  }
}

TEST(MetricSamplerTest, LinfGroupsResolvedCorrectly) {
  // Two points at L∞ distance 0.9 (L2 distance ~1.27): with α=1 they are
  // one group under L∞ but two groups under L2.
  for (Metric metric : {Metric::kL2, Metric::kLinf}) {
    SamplerOptions opts;
    opts.dim = 2;
    opts.alpha = 1.0;
    opts.seed = 7;
    opts.metric = metric;
    opts.expected_stream_length = 100;
    auto sampler = RobustL0SamplerIW::Create(opts).value();
    sampler.Insert(Point{0.0, 0.0});
    sampler.Insert(Point{0.9, 0.9});
    const size_t groups = sampler.accept_size() + sampler.reject_size();
    if (metric == Metric::kLinf) {
      EXPECT_EQ(groups, 1u);
    } else {
      EXPECT_EQ(groups, 2u);
    }
  }
}

TEST(MetricSamplerTest, L1EndToEndUniformity) {
  // 30 well-separated (under L1) groups; sampler with L1 metric must
  // resolve exactly 30 candidates and sample them all.
  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 1.0;
  opts.seed = 9;
  opts.metric = Metric::kL1;
  opts.accept_cap = 1000;  // no halving: every group accepted
  opts.expected_stream_length = 1000;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  Xoshiro256pp rng(11);
  for (int g = 0; g < 30; ++g) {
    const double cx = 10.0 * g;
    // Points within L1 distance 1 of each other around the center.
    sampler.Insert(Point{cx, 0.0});
    sampler.Insert(Point{cx + 0.3, 0.2});
    sampler.Insert(Point{cx - 0.2, -0.25});
  }
  EXPECT_EQ(sampler.accept_size(), 30u);
}

}  // namespace
}  // namespace rl0
