// Concurrency battery for the rl0_serve connection layer: N concurrent
// clients on disjoint tenants each reproduce their own direct-pool
// sample (the fleet's fair round-robin keeps tenants independent);
// concurrent feeders to ONE tenant serialize cleanly; a slow SUBSCRIBE
// consumer applies end-to-end backpressure with a provably bounded
// queue instead of unbounded buffering; a vanished subscriber cannot
// wedge its tenant; and shutdown with live, subscribed sessions is
// orderly and deadlock-free. Run under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "rl0/core/sharded_pool.h"
#include "rl0/serve/protocol.h"
#include "rl0/serve/registry.h"
#include "rl0/serve/server.h"
#include "rl0/util/rng.h"
#include "serve_test_util.h"

namespace rl0 {
namespace serve {
namespace {

std::vector<Point> Clustered(size_t n, size_t groups, uint64_t seed) {
  std::vector<Point> points;
  points.reserve(n);
  Xoshiro256pp rng(SplitMix64(seed));
  for (size_t i = 0; i < n; ++i) {
    const double g = static_cast<double>(rng.NextBounded(groups));
    Point p(2);
    p[0] = 10.0 * g + 0.3 * (rng.NextDouble() - 0.5);
    p[1] = 10.0 * g + 0.3 * (rng.NextDouble() - 0.5);
    points.push_back(std::move(p));
  }
  return points;
}

std::string CoordToken(const Point& p) {
  char buf[64];
  std::string out;
  for (size_t d = 0; d < p.dim(); ++d) {
    std::snprintf(buf, sizeof(buf), "%.17g", p[d]);
    if (d > 0) out += ',';
    out += buf;
  }
  return out;
}

TEST(ServeConcurrencyTest, DisjointTenantsFromConcurrentClients) {
  const std::string path = TestSocketPath("conc1");
  Server::Options options;
  options.unix_path = path;
  options.fleet_threads = 3;
  auto started = Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  Server* server = started.value().get();

  const int kClients = 6;
  const size_t kN = 1200;
  std::vector<std::vector<std::string>> server_samples(kClients);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(path);
      if (!client.connected()) {
        ++failures;
        return;
      }
      const std::string tenant = "t" + std::to_string(c);
      char create[160];
      std::snprintf(create, sizeof(create),
                    "CREATE %s dim=2 alpha=0.8 window=400 shards=2 "
                    "seed=%d m=%zu",
                    tenant.c_str(), 100 + c, kN);
      if (client.Command(create) != std::vector<std::string>{"OK"}) {
        ++failures;
        return;
      }
      const auto points = Clustered(kN, 40, 1000 + c);
      for (size_t off = 0; off < kN;) {
        const size_t end = std::min(kN, off + 97);
        std::string feed = "FEED " + tenant;
        for (size_t i = off; i < end; ++i) {
          feed += " " + CoordToken(points[i]);
        }
        const auto reply = client.Command(feed);
        if (reply.size() != 1 || reply[0].rfind("OK fed=", 0) != 0) {
          ++failures;
          return;
        }
        off = end;
      }
      auto sample = client.Command("SAMPLE " + tenant + " q=3");
      if (sample.size() != 4 || sample.back() != "OK") {
        ++failures;
        return;
      }
      sample.pop_back();
      server_samples[c] = std::move(sample);
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(server->registry()->tenant_count(), size_t{kClients});
  EXPECT_GE(server->sessions_accepted(), size_t{kClients});

  // Each tenant's samples match its own direct pool — concurrency never
  // leaked one tenant's stream into another.
  for (int c = 0; c < kClients; ++c) {
    SamplerOptions opts;
    opts.dim = 2;
    opts.alpha = 0.8;
    opts.seed = static_cast<uint64_t>(100 + c);
    opts.expected_stream_length = kN;
    auto pool = ShardedSwSamplerPool::Create(opts, 400, 2);
    ASSERT_TRUE(pool.ok());
    const auto points = Clustered(kN, 40, 1000 + c);
    pool.value().FeedBorrowed(Span<const Point>(points.data(), kN));
    pool.value().Drain();
    Xoshiro256pp rng(
        SplitMix64(static_cast<uint64_t>(100 + c) ^ kQuerySeedSalt));
    std::vector<std::string> expected;
    for (int q = 0; q < 3; ++q) {
      const auto s = pool.value().SampleLatest(&rng);
      ASSERT_TRUE(s.has_value());
      expected.push_back("ITEM " +
                         FormatSampleLine(s->point, s->stream_index));
    }
    EXPECT_EQ(server_samples[c], expected) << "tenant t" << c;
  }
  started.value()->Shutdown();
}

TEST(ServeConcurrencyTest, ConcurrentCreatesOfOneNameAdmitExactlyOne) {
  // Regression: Create used to check-then-build-then-insert, so two
  // racing CREATEs of one name could both run the build (and, with
  // recover=1, both rebase the same on-disk checkpoint chain). The name
  // is now reserved under the registry lock before any work: exactly
  // one racer wins, every other gets FailedPrecondition.
  TenantRegistry registry(TenantRegistry::Options{});
  constexpr int kRacers = 8;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kRacers);
  for (int i = 0; i < kRacers; ++i) {
    threads.emplace_back([&] {
      CreateParams params;
      params.dim = 1;
      params.alpha = 0.5;
      params.window = 100;
      params.expected_m = 1 << 12;
      if (registry.Create("shared", params).ok()) ++ok_count;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), 1);
  EXPECT_EQ(registry.tenant_count(), 1u);
}

TEST(ServeConcurrencyTest, ConcurrentFeedersToOneTenantSerialize) {
  const std::string path = TestSocketPath("conc2");
  Server::Options options;
  options.unix_path = path;
  options.fleet_threads = 2;
  auto started = Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();

  {
    TestClient admin(path);
    ASSERT_TRUE(admin.connected());
    ASSERT_EQ(admin.Command("CREATE shared dim=1 alpha=0.5 window=100000"),
              std::vector<std::string>{"OK"});
  }

  const int kFeeders = 4;
  const int kBatches = 50;
  const int kPerBatch = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> feeders;
  for (int f = 0; f < kFeeders; ++f) {
    feeders.emplace_back([&, f] {
      TestClient client(path);
      if (!client.connected()) {
        ++failures;
        return;
      }
      char token[48];
      for (int b = 0; b < kBatches; ++b) {
        std::string feed = "FEED shared";
        for (int i = 0; i < kPerBatch; ++i) {
          // Distinct values per feeder so every point is a new group.
          std::snprintf(token, sizeof(token), " %d",
                        1000000 * f + b * kPerBatch + i);
          feed += token;
        }
        const auto reply = client.Command(feed);
        if (reply != std::vector<std::string>{"OK fed=20"}) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : feeders) t.join();
  ASSERT_EQ(failures.load(), 0);

  TestClient check(path);
  ASSERT_TRUE(check.connected());
  const auto stats = check.Command("STATS shared");
  ASSERT_EQ(stats.size(), 2u);
  char want[32];
  std::snprintf(want, sizeof(want), "points=%d",
                kFeeders * kBatches * kPerBatch);
  EXPECT_NE(stats[0].find(want), std::string::npos) << stats[0];
  started.value()->Shutdown();
}

TEST(ServeConcurrencyTest, SlowSubscriberBackpressureBoundsTheQueue) {
  const std::string path = TestSocketPath("conc3");
  Server::Options options;
  options.unix_path = path;
  options.fleet_threads = 2;
  options.event_queue_depth = 8;  // tight bound to make overflow easy
  auto started = Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  Server* server = started.value().get();

  TestClient subscriber(path);
  ASSERT_TRUE(subscriber.connected());
  ASSERT_EQ(subscriber.Command("CREATE bp dim=1 alpha=0.5 window=100000"),
            std::vector<std::string>{"OK"});
  const auto sub = subscriber.Command("SUBSCRIBE bp digest every=1");
  ASSERT_EQ(sub.size(), 1u);
  ASSERT_EQ(sub[0].rfind("OK id=", 0), 0u);

  // Every fed point fires one event at the subscriber. The feeder sends
  // far more events than the queue holds while the subscriber reads
  // slowly: the feeder must stall (backpressure), never the server
  // buffer unboundedly.
  const int kEvents = 120;
  std::thread feeder([&] {
    TestClient client(path);
    ASSERT_TRUE(client.connected());
    for (int i = 0; i < kEvents; ++i) {
      const auto reply =
          client.Command("FEED bp " + std::to_string(i), 30000);
      ASSERT_EQ(reply, std::vector<std::string>{"OK fed=1"}) << i;
    }
  });

  // Drain slowly: a couple of events per poll round.
  size_t seen = 0;
  while (seen < kEvents) {
    ASSERT_TRUE(subscriber.WaitForEvents(seen + 2, 30000))
        << "stalled at " << seen;
    seen = subscriber.events().size();
    // Pacing only — WaitForEvents above is the actual synchronization.
    std::this_thread::sleep_for(  // sync-lint: allow(sleep)
        std::chrono::milliseconds(2));
  }
  feeder.join();

  EXPECT_EQ(subscriber.events().size(), size_t{kEvents});
  // Events arrive in stream order.
  for (size_t i = 0; i < subscriber.events().size(); ++i) {
    EXPECT_NE(subscriber.events()[i][0].find("digest"), std::string::npos);
  }
  // The allocation bound: no session queue ever held more than its cap.
  EXPECT_LE(server->MaxEventQueueDepth(), options.event_queue_depth);
  started.value()->Shutdown();
}

TEST(ServeConcurrencyTest, VanishedSubscriberDoesNotWedgeTheTenant) {
  const std::string path = TestSocketPath("conc4");
  Server::Options options;
  options.unix_path = path;
  options.fleet_threads = 2;
  options.event_queue_depth = 4;
  auto started = Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();

  {
    // Subscribe, then vanish without UNSUBSCRIBE: the closed socket
    // must drop the subscription instead of stalling the tenant.
    TestClient subscriber(path);
    ASSERT_TRUE(subscriber.connected());
    ASSERT_EQ(subscriber.Command("CREATE gone dim=1 alpha=0.5 window=1000"),
              std::vector<std::string>{"OK"});
    ASSERT_EQ(subscriber.Command("SUBSCRIBE gone digest every=1")[0].rfind(
                  "OK id=", 0),
              0u);
    subscriber.Close();
  }

  TestClient feeder(path);
  ASSERT_TRUE(feeder.connected());
  for (int i = 0; i < 50; ++i) {
    const auto reply =
        feeder.Command("FEED gone " + std::to_string(i), 30000);
    ASSERT_EQ(reply, std::vector<std::string>{"OK fed=1"}) << i;
  }
  const auto stats = feeder.Command("STATS gone");
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_NE(stats[0].find("points=50"), std::string::npos) << stats[0];
  started.value()->Shutdown();
}

TEST(ServeConcurrencyTest, ShutdownWithLiveSessionsIsOrderly) {
  const std::string path = TestSocketPath("conc5");
  Server::Options options;
  options.unix_path = path;
  options.fleet_threads = 2;
  auto started = Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();

  TestClient subscriber(path);
  ASSERT_TRUE(subscriber.connected());
  ASSERT_EQ(subscriber.Command("CREATE sd dim=1 alpha=0.5 window=1000"),
            std::vector<std::string>{"OK"});
  ASSERT_EQ(
      subscriber.Command("SUBSCRIBE sd digest every=10")[0].rfind("OK id=",
                                                                  0),
      0u);
  TestClient idle(path);
  ASSERT_TRUE(idle.connected());
  ASSERT_EQ(idle.Command("FEED sd 1 2 3 4 5"),
            std::vector<std::string>{"OK fed=5"});

  // Shutdown with two live sessions, one subscribed: must not deadlock.
  const auto t0 = std::chrono::steady_clock::now();
  started.value()->Shutdown();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed)
                .count(),
            10);

  // Both clients observe EOF.
  const auto r1 = subscriber.ReadUnit(2000);
  EXPECT_EQ(r1.back(), "<io error>");
  const auto r2 = idle.ReadUnit(2000);
  EXPECT_EQ(r2.back(), "<io error>");

  // Idempotent: a second Shutdown returns immediately.
  started.value()->Shutdown();
}

}  // namespace
}  // namespace serve
}  // namespace rl0
