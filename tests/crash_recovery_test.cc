// Crash-recovery differential (core/checkpoint.h): kill the journal at
// random byte offsets — including mid-record torn tails — across random
// chunkings and lane counts, and pin the recovered pool against a
// reference that processed the same surviving prefix without a crash.
//
// Byte-level equality (per-shard snapshot bytes + lockstep query draws)
// is pinned against a reference sharing the restore point: restored
// tables are packed dense while a never-restored pool's freed slots
// recycle in LIFO order, so the references below re-feed the suffix on
// top of the same restored checkpoint. The empty-checkpoint sub-case has
// no such layout skew, so there the reference is a genuinely
// uninterrupted pool and equality is absolute.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "rl0/core/checkpoint.h"
#include "rl0/core/snapshot.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

SamplerOptions PoolOptions(uint64_t seed) {
  SamplerOptions opts;
  opts.dim = 1;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.accept_cap = 8;
  opts.expected_stream_length = 1 << 14;
  return opts;
}

std::vector<Point> Revisits(size_t n, size_t groups, uint64_t seed) {
  std::vector<Point> points;
  points.reserve(n);
  Xoshiro256pp rng(SplitMix64(seed));
  for (size_t i = 0; i < n; ++i) {
    const double g = static_cast<double>(rng.NextBounded(groups));
    Point p(1);
    p[0] = 10.0 * g + 0.3 * (rng.NextDouble() - 0.5);
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<int64_t> MonotoneStamps(size_t n, uint64_t seed) {
  std::vector<int64_t> stamps;
  stamps.reserve(n);
  Xoshiro256pp rng(SplitMix64(seed ^ 0x5354414DULL));
  int64_t t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += 1 + static_cast<int64_t>(rng.NextBounded(4));
    stamps.push_back(t);
  }
  return stamps;
}

std::vector<std::string> ShardBlobs(const ShardedSwSamplerPool& pool) {
  std::vector<std::string> blobs(pool.num_shards());
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    EXPECT_TRUE(SnapshotSamplerSW(pool.shard(s), &blobs[s]).ok());
  }
  return blobs;
}

void ExpectLockstepDraws(ShardedSwSamplerPool* a, ShardedSwSamplerPool* b) {
  Xoshiro256pp rng_a(SplitMix64(2718));
  Xoshiro256pp rng_b(SplitMix64(2718));
  for (int q = 0; q < 16; ++q) {
    const auto da = a->SampleLatest(&rng_a);
    const auto db = b->SampleLatest(&rng_b);
    ASSERT_EQ(da.has_value(), db.has_value()) << "draw " << q;
    if (da.has_value()) {
      EXPECT_EQ(da->stream_index, db->stream_index) << "draw " << q;
      EXPECT_EQ(da->point, db->point) << "draw " << q;
    }
  }
}

/// The surviving post-checkpoint suffix of a torn journal, concatenated
/// back into flat arrays for the reference re-feed.
struct SurvivingSuffix {
  std::vector<Point> points;
  std::vector<int64_t> stamps;  // empty in sequence mode
};

SurvivingSuffix SuffixOf(const std::string& torn_journal,
                         uint64_t checkpoint_seq) {
  SurvivingSuffix suffix;
  JournalContents contents;
  EXPECT_TRUE(ReadJournal(torn_journal, &contents).ok());
  for (const JournalRecord& rec : contents.records) {
    if (rec.seq < checkpoint_seq) continue;
    suffix.points.insert(suffix.points.end(), rec.points.begin(),
                         rec.points.end());
    suffix.stamps.insert(suffix.stamps.end(), rec.stamps.begin(),
                         rec.stamps.end());
  }
  return suffix;
}

/// Re-feeds `suffix` in randomized chunk sizes — different from the
/// journaled chunking, so the differential also pins replay's
/// chunking-invariance (the global-residue partition).
void RefeedRandomChunks(ShardedSwSamplerPool* pool,
                        const SurvivingSuffix& suffix, uint64_t chunk_seed) {
  Xoshiro256pp rng(SplitMix64(chunk_seed));
  size_t offset = 0;
  while (offset < suffix.points.size()) {
    const size_t chunk =
        std::min<size_t>(1 + rng.NextBounded(171),
                         suffix.points.size() - offset);
    if (suffix.stamps.empty()) {
      pool->Feed(Span<const Point>(suffix.points.data() + offset, chunk));
    } else {
      pool->FeedStamped(
          Span<const Point>(suffix.points.data() + offset, chunk),
          Span<const int64_t>(suffix.stamps.data() + offset, chunk));
    }
    offset += chunk;
  }
  pool->Drain();
}

/// One full crash scenario: feed with a journal tap, checkpoint partway
/// through, keep feeding, then tear the journal at random offsets and
/// compare RecoverPool's replay against a restore-plus-refeed reference.
void RunDifferential(size_t lanes, bool time_mode, uint64_t seed) {
  const std::vector<Point> points = Revisits(2200, 55, seed);
  const std::vector<int64_t> stamps =
      time_mode ? MonotoneStamps(points.size(), seed) : std::vector<int64_t>();
  const SamplerOptions opts = PoolOptions(seed * 3 + 1);
  const int64_t window = 347;

  auto pool = ShardedSwSamplerPool::Create(opts, window, lanes).value();
  std::string journal;
  JournalWriter writer(&journal, opts.dim);
  AttachJournal(&pool, &writer);

  Xoshiro256pp rng(SplitMix64(seed ^ 0xC4A54ULL));
  const size_t checkpoint_at = 700 + rng.NextBounded(400);
  std::string ckpt;
  uint64_t checkpoint_seq = 0;
  size_t checkpoint_bytes = 0;
  size_t offset = 0;
  while (offset < points.size()) {
    if (ckpt.empty() && offset >= checkpoint_at) {
      pool.Drain();
      checkpoint_seq = writer.next_seq();
      checkpoint_bytes = journal.size();
      ASSERT_TRUE(CheckpointPool(&pool, checkpoint_seq, &ckpt).ok());
    }
    const size_t chunk =
        std::min<size_t>(1 + rng.NextBounded(131), points.size() - offset);
    if (time_mode) {
      pool.FeedStamped(Span<const Point>(points.data() + offset, chunk),
                       Span<const int64_t>(stamps.data() + offset, chunk));
    } else {
      pool.Feed(Span<const Point>(points.data() + offset, chunk));
    }
    offset += chunk;
  }
  pool.Drain();
  ASSERT_FALSE(ckpt.empty());
  ASSERT_GT(journal.size(), checkpoint_bytes);

  // Tear offsets: the exact checkpoint boundary, the intact end, and
  // random cuts in between (byte-level, so most land mid-record).
  std::vector<size_t> tears = {checkpoint_bytes, journal.size()};
  for (int t = 0; t < 5; ++t) {
    tears.push_back(checkpoint_bytes +
                    rng.NextBounded(journal.size() - checkpoint_bytes + 1));
  }
  for (const size_t tear : tears) {
    SCOPED_TRACE("tear at byte " + std::to_string(tear) + "/" +
                 std::to_string(journal.size()));
    const std::string torn = journal.substr(0, tear);

    auto recovered_r = RecoverPool(ckpt, torn);
    ASSERT_TRUE(recovered_r.ok()) << recovered_r.status().ToString();
    ShardedSwSamplerPool recovered = std::move(recovered_r).value();

    const SurvivingSuffix suffix = SuffixOf(torn, checkpoint_seq);
    auto reference_r = RecoverPool(ckpt, "");
    ASSERT_TRUE(reference_r.ok());
    ShardedSwSamplerPool reference = std::move(reference_r).value();
    RefeedRandomChunks(&reference, suffix, seed ^ tear);

    EXPECT_EQ(recovered.points_processed(), reference.points_processed());
    EXPECT_EQ(ShardBlobs(recovered), ShardBlobs(reference));
    ExpectLockstepDraws(&recovered, &reference);
  }
}

TEST(CrashRecoveryTest, SequenceModeDifferentialAcrossLanesAndTears) {
  for (const size_t lanes : {1, 2, 8}) {
    SCOPED_TRACE("lanes " + std::to_string(lanes));
    RunDifferential(lanes, /*time_mode=*/false, 9000 + lanes);
  }
}

TEST(CrashRecoveryTest, TimeModeDifferentialAcrossLanesAndTears) {
  for (const size_t lanes : {1, 2, 8}) {
    SCOPED_TRACE("lanes " + std::to_string(lanes));
    RunDifferential(lanes, /*time_mode=*/true, 9100 + lanes);
  }
}

TEST(CrashRecoveryTest, EmptyCheckpointEqualsTrulyUninterruptedRun) {
  // A checkpoint cut before any feeding restores perfectly packed
  // (empty) tables — no layout skew — so recovery must equal a pool that
  // never crashed at all, byte-for-byte, at every tear offset.
  for (const size_t lanes : {1, 2, 8}) {
    SCOPED_TRACE("lanes " + std::to_string(lanes));
    const std::vector<Point> points = Revisits(1400, 45, 70 + lanes);
    const SamplerOptions opts = PoolOptions(71 + lanes);
    const int64_t window = 401;

    auto pool = ShardedSwSamplerPool::Create(opts, window, lanes).value();
    std::string journal;
    JournalWriter writer(&journal, opts.dim);
    AttachJournal(&pool, &writer);
    std::string ckpt;
    ASSERT_TRUE(CheckpointPool(&pool, writer.next_seq(), &ckpt).ok());

    Xoshiro256pp rng(SplitMix64(72 + lanes));
    size_t offset = 0;
    while (offset < points.size()) {
      const size_t chunk =
          std::min<size_t>(1 + rng.NextBounded(149), points.size() - offset);
      pool.Feed(Span<const Point>(points.data() + offset, chunk));
      offset += chunk;
    }
    pool.Drain();

    for (int t = 0; t < 5; ++t) {
      const size_t tear = rng.NextBounded(journal.size() + 1);
      SCOPED_TRACE("tear at byte " + std::to_string(tear));
      const std::string torn = journal.substr(0, tear);
      auto recovered_r = RecoverPool(ckpt, torn);
      ASSERT_TRUE(recovered_r.ok()) << recovered_r.status().ToString();
      ShardedSwSamplerPool recovered = std::move(recovered_r).value();

      const SurvivingSuffix suffix = SuffixOf(torn, 0);
      auto uninterrupted =
          ShardedSwSamplerPool::Create(opts, window, lanes).value();
      if (!suffix.points.empty()) {
        uninterrupted.Feed(suffix.points);
      }
      uninterrupted.Drain();

      EXPECT_EQ(recovered.points_processed(), suffix.points.size());
      EXPECT_EQ(ShardBlobs(recovered), ShardBlobs(uninterrupted));
      ExpectLockstepDraws(&recovered, &uninterrupted);
    }
  }
}

/// Canonical (id-sorted) per-level record equality for pools whose slot
/// layouts legitimately differ (see the file comment).
void ExpectSameCanonicalState(const RobustL0SamplerSW& a,
                              const RobustL0SamplerSW& b) {
  ASSERT_EQ(a.num_levels(), b.num_levels());
  for (size_t l = 0; l < a.num_levels(); ++l) {
    SCOPED_TRACE("level " + std::to_string(l));
    std::vector<GroupRecord> ga, gb;
    a.level(l).SnapshotGroups(&ga);
    b.level(l).SnapshotGroups(&gb);
    const auto by_id = [](const GroupRecord& x, const GroupRecord& y) {
      return x.id < y.id;
    };
    std::sort(ga.begin(), ga.end(), by_id);
    std::sort(gb.begin(), gb.end(), by_id);
    ASSERT_EQ(ga.size(), gb.size());
    for (size_t i = 0; i < ga.size(); ++i) {
      ASSERT_EQ(ga[i].id, gb[i].id);
      EXPECT_EQ(ga[i].rep_index, gb[i].rep_index);
      EXPECT_EQ(ga[i].accepted, gb[i].accepted);
      EXPECT_EQ(ga[i].latest_stamp, gb[i].latest_stamp);
      EXPECT_EQ(ga[i].latest_index, gb[i].latest_index);
      EXPECT_EQ(ga[i].rep, gb[i].rep);
      EXPECT_EQ(ga[i].latest, gb[i].latest);
      ASSERT_EQ(ga[i].reservoir.size(), gb[i].reservoir.size());
      for (size_t r = 0; r < ga[i].reservoir.size(); ++r) {
        EXPECT_EQ(ga[i].reservoir[r].priority, gb[i].reservoir[r].priority);
        EXPECT_EQ(ga[i].reservoir[r].stream_index,
                  gb[i].reservoir[r].stream_index);
        EXPECT_EQ(ga[i].reservoir[r].point, gb[i].reservoir[r].point);
      }
    }
  }
}

TEST(CrashRecoveryTest, LateFeedJournalReplaysWatermarkRecords) {
  // Bounded-lateness runs journal the *released* chunks plus the
  // watermark broadcasts. Recovery from a mid-run checkpoint + the full
  // journal must land in the same state as restoring an end-of-run
  // checkpoint — watermark records and all. (Canonical comparison: the
  // two sides' slot layouts differ per the LIFO caveat.)
  for (const size_t lanes : {1, 2}) {
    SCOPED_TRACE("lanes " + std::to_string(lanes));
    SamplerOptions opts = PoolOptions(81 + lanes);
    opts.allowed_lateness = 12;
    const int64_t window = 211;
    const std::vector<Point> points = Revisits(1600, 40, 82 + lanes);
    std::vector<int64_t> stamps = MonotoneStamps(points.size(), 83 + lanes);
    // Bounded disorder: swap adjacent stamped pairs (gap ≤ 8 < lateness).
    for (size_t i = 0; i + 1 < stamps.size(); i += 2) {
      std::swap(stamps[i], stamps[i + 1]);
    }

    auto pool = ShardedSwSamplerPool::Create(opts, window, lanes).value();
    std::string journal;
    JournalWriter writer(&journal, opts.dim);
    AttachJournal(&pool, &writer);

    Xoshiro256pp rng(SplitMix64(84 + lanes));
    std::string mid_ckpt;
    uint64_t mid_seq = 0;
    size_t offset = 0;
    while (offset < points.size()) {
      if (mid_ckpt.empty() && offset >= 600) {
        pool.Drain();
        mid_seq = writer.next_seq();
        ASSERT_TRUE(CheckpointPool(&pool, mid_seq, &mid_ckpt).ok());
      }
      const size_t chunk =
          std::min<size_t>(2 + 2 * rng.NextBounded(60),
                           points.size() - offset);
      pool.FeedStampedLate(
          Span<const Point>(points.data() + offset, chunk),
          Span<const int64_t>(stamps.data() + offset, chunk));
      offset += chunk;
    }
    pool.FlushLate();
    pool.Drain();
    EXPECT_EQ(pool.late_stats().late_dropped, 0u);
    std::string end_ckpt;
    ASSERT_TRUE(CheckpointPool(&pool, writer.next_seq(), &end_ckpt).ok());

    auto replayed_r = RecoverPool(mid_ckpt, journal);
    ASSERT_TRUE(replayed_r.ok()) << replayed_r.status().ToString();
    ShardedSwSamplerPool replayed = std::move(replayed_r).value();
    auto restored_r = RecoverPool(end_ckpt, "");
    ASSERT_TRUE(restored_r.ok());
    ShardedSwSamplerPool restored = std::move(restored_r).value();

    EXPECT_EQ(replayed.points_processed(), restored.points_processed());
    for (size_t s = 0; s < lanes; ++s) {
      SCOPED_TRACE("shard " + std::to_string(s));
      EXPECT_EQ(replayed.shard(s).watermark(), restored.shard(s).watermark());
      ExpectSameCanonicalState(replayed.shard(s), restored.shard(s));
    }

    // Torn late-mode journals must still recover cleanly (watermark
    // records can be the torn record) — equal to recovering the valid
    // prefix explicitly.
    for (int t = 0; t < 4; ++t) {
      const size_t tear = rng.NextBounded(journal.size() + 1);
      SCOPED_TRACE("tear at byte " + std::to_string(tear));
      const std::string torn = journal.substr(0, tear);
      auto a = RecoverPool(mid_ckpt, torn);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      JournalContents contents;
      ASSERT_TRUE(ReadJournal(torn, &contents).ok());
      auto b = RecoverPool(mid_ckpt, torn.substr(0, contents.valid_bytes));
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(ShardBlobs(a.value()), ShardBlobs(b.value()));
    }
  }
}

}  // namespace
}  // namespace rl0
