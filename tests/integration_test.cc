// End-to-end integration tests: the full Section 6 pipeline (base dataset
// → near-duplicate transformation → sampler → distribution metrics) on
// scaled-down versions of the paper's eight datasets, robust-vs-standard
// sampler comparison, F0-vs-exact agreement, and IW/SW cross-checks.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "rl0/baseline/exact_partition.h"
#include "rl0/baseline/naive_robust.h"
#include "rl0/baseline/standard_l0.h"
#include "rl0/core/f0_iw.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/metrics/distribution.h"
#include "rl0/stream/dataset.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace rl0 {
namespace {

struct PipelineCase {
  std::string name;
  size_t base_n;
  size_t dim;
  DupDistribution distribution;
};

class PipelineTest : public ::testing::TestWithParam<PipelineCase> {};

NoisyDataset MakeCase(const PipelineCase& pc, uint64_t seed) {
  const BaseDataset base = RandomUniform(pc.base_n, pc.dim, seed, pc.name);
  NearDupOptions nd;
  nd.distribution = pc.distribution;
  nd.max_dups = 15;  // scaled down from the paper's 100 for test speed
  nd.seed = seed + 1;
  return MakeNearDuplicates(base, nd);
}

SamplerOptions PipelineOptions(const NoisyDataset& data, uint64_t seed) {
  SamplerOptions opts;
  opts.dim = data.dim;
  opts.alpha = data.alpha;
  opts.seed = seed;
  opts.side_mode = GridSideMode::kHighDim;
  opts.accept_cap = 12;
  opts.expected_stream_length = data.points.size();
  return opts;
}

TEST_P(PipelineTest, EndToEndUniformSampling) {
  const PipelineCase pc = GetParam();
  const NoisyDataset data = MakeCase(pc, 101);
  ASSERT_TRUE(data.Validate().ok());
  const RepresentativeStream reps = ExtractRepresentatives(data);

  SampleDistribution dist(data.num_groups);
  const int runs = 6000;
  int empty_runs = 0;
  for (int run = 0; run < runs; ++run) {
    auto sampler =
        RobustL0SamplerIW::Create(PipelineOptions(data, 500 + run)).value();
    for (const Point& p : reps.points) sampler.Insert(p);
    Xoshiro256pp rng(80000 + run);
    const auto sample = sampler.Sample(&rng);
    if (!sample.has_value()) {
      ++empty_runs;  // legitimate low-probability failure after halving
      continue;
    }
    dist.Record(reps.group_of[sample->stream_index]);
  }
  EXPECT_LT(empty_runs, runs / 200) << pc.name;
  const double floor =
      SampleDistribution::StdDevNoiseFloor(data.num_groups, runs);
  EXPECT_LT(dist.StdDevNm(), std::max(0.1, 2.0 * floor)) << pc.name;
  EXPECT_EQ(dist.ZeroGroups(), 0u) << pc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, PipelineTest,
    ::testing::Values(
        PipelineCase{"MiniRand5", 60, 5, DupDistribution::kUniform},
        PipelineCase{"MiniRand20", 60, 20, DupDistribution::kUniform},
        PipelineCase{"MiniYacht", 50, 7, DupDistribution::kUniform},
        PipelineCase{"MiniSeeds", 40, 8, DupDistribution::kUniform},
        PipelineCase{"MiniRand5pl", 60, 5, DupDistribution::kPowerLaw},
        PipelineCase{"MiniRand20pl", 60, 20, DupDistribution::kPowerLaw},
        PipelineCase{"MiniYachtpl", 50, 7, DupDistribution::kPowerLaw},
        PipelineCase{"MiniSeedspl", 40, 8, DupDistribution::kPowerLaw}),
    [](const auto& info) { return info.param.name; });

TEST(IntegrationTest, RobustBeatsStandardOnPowerLawData) {
  // Power-law duplicates: the standard sampler's max deviation from
  // uniform must be far above the robust sampler's.
  PipelineCase pc{"BiasCase", 50, 5, DupDistribution::kPowerLaw};
  const NoisyDataset data = MakeCase(pc, 201);
  const RepresentativeStream reps = ExtractRepresentatives(data);

  SampleDistribution robust(data.num_groups);
  SampleDistribution standard(data.num_groups);
  const int runs = 4000;
  for (int run = 0; run < runs; ++run) {
    auto sampler =
        RobustL0SamplerIW::Create(PipelineOptions(data, 900 + run)).value();
    for (const Point& p : reps.points) sampler.Insert(p);
    Xoshiro256pp rng(60000 + run);
    const auto sample = sampler.Sample(&rng);
    ASSERT_TRUE(sample.has_value());
    robust.Record(reps.group_of[sample->stream_index]);

    StandardL0Sampler classic(3000 + static_cast<uint64_t>(run));
    for (const Point& p : data.points) classic.Insert(p);
    const auto biased = classic.Sample();
    ASSERT_TRUE(biased.has_value());
    standard.Record(data.group_of[biased->stream_index]);
  }
  // The heaviest power-law group holds ~n of ~n·H_n points: the standard
  // sampler hits it ~n/(n·H_n) ≈ 22% of the time instead of 2%.
  EXPECT_GT(standard.MaxDevNm(), 4.0);
  EXPECT_LT(robust.MaxDevNm(), 1.0);
  EXPECT_GT(standard.StdDevNm(), 4 * robust.StdDevNm());
}

TEST(IntegrationTest, F0MatchesExactPartitionOnPipelineData) {
  PipelineCase pc{"F0Case", 120, 6, DupDistribution::kUniform};
  const NoisyDataset data = MakeCase(pc, 301);
  const size_t exact = NaturalPartition(data.points, data.alpha).num_groups;
  ASSERT_EQ(exact, data.num_groups);

  F0Options opts;
  opts.sampler.dim = data.dim;
  opts.sampler.alpha = data.alpha;
  opts.sampler.seed = 303;
  opts.sampler.side_mode = GridSideMode::kHighDim;
  opts.epsilon = 0.25;
  opts.copies = 7;
  auto est = F0EstimatorIW::Create(opts).value();
  for (const Point& p : data.points) est.Insert(p);
  EXPECT_NEAR(est.Estimate(), static_cast<double>(exact),
              0.3 * static_cast<double>(exact));
}

TEST(IntegrationTest, IwAndNaiveAgreeOnGroupUniverse) {
  // The IW sampler's *accepted* representatives must be a subset of the
  // exact sampler's representatives (the same first-point-of-group
  // definition; rejected entries may hold later points of groups whose
  // first point was ignored — see iw_sampler_test for the argument).
  PipelineCase pc{"Universe", 80, 4, DupDistribution::kUniform};
  const NoisyDataset data = MakeCase(pc, 401);
  auto sampler =
      RobustL0SamplerIW::Create(PipelineOptions(data, 403)).value();
  NaiveRobustSampler naive(data.alpha);
  for (const Point& p : data.points) {
    sampler.Insert(p);
    naive.Insert(p);
  }
  EXPECT_EQ(naive.num_groups(), data.num_groups);
  for (const SampleItem& item : sampler.AcceptedRepresentatives()) {
    bool found = false;
    for (const SampleItem& rep : naive.representatives()) {
      found = found || rep.stream_index == item.stream_index;
    }
    EXPECT_TRUE(found) << "index " << item.stream_index;
  }
}

TEST(IntegrationTest, SlidingWindowOverNoisyStream) {
  // Run the hierarchy over a real noisy stream (sequence window = 1/4 of
  // the stream) and verify every query returns a point of an alive group.
  PipelineCase pc{"SWCase", 60, 3, DupDistribution::kUniform};
  const NoisyDataset data = MakeCase(pc, 501);
  const int64_t window = static_cast<int64_t>(data.points.size() / 4);
  SamplerOptions opts = PipelineOptions(data, 503);
  auto sampler = RobustL0SamplerSW::Create(opts, window).value();
  Xoshiro256pp rng(505);
  for (size_t i = 0; i < data.points.size(); ++i) {
    sampler.Insert(data.points[i]);
    if (i % 97 == 0 && i > 0) {
      const auto sample = sampler.SampleLatest(&rng);
      ASSERT_TRUE(sample.has_value());
      // The group of the returned point must have an unexpired member.
      const uint32_t g = [&] {
        for (size_t j = 0; j < data.points.size(); ++j) {
          if (WithinDistance(data.points[j], sample->point, data.alpha)) {
            return data.group_of[j];
          }
        }
        return uint32_t{0xFFFFFFFF};
      }();
      ASSERT_NE(g, 0xFFFFFFFFu);
      bool alive = false;
      const size_t lo = (i + 1 >= static_cast<size_t>(window))
                            ? i + 1 - static_cast<size_t>(window)
                            : 0;
      for (size_t j = lo; j <= i; ++j) {
        alive = alive || data.group_of[j] == g;
      }
      EXPECT_TRUE(alive) << "i=" << i;
    }
  }
}

TEST(IntegrationTest, KSamplesCoverDistinctGroupsOnPipelineData) {
  PipelineCase pc{"KSample", 100, 4, DupDistribution::kUniform};
  const NoisyDataset data = MakeCase(pc, 601);
  SamplerOptions opts = PipelineOptions(data, 603);
  opts.k = 8;
  opts.accept_cap = 0;  // derive from k: κ0·k·log m
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  for (const Point& p : data.points) sampler.Insert(p);
  Xoshiro256pp rng(605);
  const auto result = sampler.SampleK(8, &rng);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result.value().size(); ++i) {
    for (size_t j = i + 1; j < result.value().size(); ++j) {
      EXPECT_NE(data.group_of[result.value()[i].stream_index],
                data.group_of[result.value()[j].stream_index]);
    }
  }
}

}  // namespace
}  // namespace rl0
