// Kernel-equivalence battery for geom/distance_kernels.h: the batched
// paths must return, per candidate, bit-for-bit the boolean the scalar
// MetricWithinDistance predicate returns — over randomized batches, all
// three metrics, dims {1, 2, 5, 20, 64}, radii including exact-boundary
// ties, and both dispatch paths (the runtime-dispatched entry point and
// the explicit scalar reference; CI additionally builds the whole suite
// with -DRL0_NO_SIMD=ON so the escape hatch stays green).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "rl0/geom/distance_kernels.h"
#include "rl0/geom/metric.h"
#include "rl0/geom/point.h"
#include "rl0/geom/point_store.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

Point RandomPoint(size_t dim, Xoshiro256pp* rng, double scale) {
  Point p(dim);
  for (size_t i = 0; i < dim; ++i) {
    p[i] = (rng->NextDouble() * 2.0 - 1.0) * scale;
  }
  return p;
}

struct Batch {
  PointStore store{1};
  std::vector<uint32_t> slots;
  std::vector<PointRef> refs;

  explicit Batch(size_t dim) : store(dim) {}

  void Add(const Point& p) {
    const PointRef ref = store.Add(p);
    refs.push_back(ref);
    slots.push_back(store.SlotIndexOf(ref));
  }
};

// The ground truth the kernels must reproduce bit for bit.
std::vector<bool> ScalarTruth(const Batch& b, PointView q, Metric metric,
                              double radius) {
  std::vector<bool> truth;
  truth.reserve(b.refs.size());
  for (PointRef ref : b.refs) {
    truth.push_back(MetricWithinDistance(b.store.View(ref), q, radius,
                                         metric));
  }
  return truth;
}

void ExpectAllPathsMatch(const Batch& b, PointView q, Metric metric,
                         double radius, const std::string& what) {
  const std::vector<bool> truth = ScalarTruth(b, q, metric, radius);
  const size_t n = b.slots.size();

  Bitmask dispatched;
  DistanceOneToMany(b.store, q, b.slots.data(), n, metric, radius,
                    &dispatched);
  Bitmask scalar;
  DistanceOneToManyScalar(b.store, q, b.slots.data(), n, metric, radius,
                          &scalar);
  ASSERT_EQ(dispatched.size(), n);
  ASSERT_EQ(scalar.size(), n);
  size_t first_true = Bitmask::npos;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(dispatched.Test(i), truth[i])
        << what << ": dispatched (" << DistanceKernelDispatch()
        << ") disagrees with MetricWithinDistance at candidate " << i;
    EXPECT_EQ(scalar.Test(i), truth[i])
        << what << ": scalar kernel disagrees at candidate " << i;
    if (first_true == Bitmask::npos && truth[i]) first_true = i;
  }
  EXPECT_EQ(dispatched.FindFirst(), first_true) << what;

  // The first-match probe must agree with the scalar early-exit walk.
  EXPECT_EQ(FindFirstWithin(b.store, q, b.slots.data(), n, metric, radius),
            first_true)
      << what << ": FindFirstWithin diverged from the scalar walk";
}

class KernelEquivalence : public ::testing::TestWithParam<size_t> {};

TEST_P(KernelEquivalence, RandomBatchesMatchScalarPredicate) {
  const size_t dim = GetParam();
  Xoshiro256pp rng(0xD15 + dim);
  for (Metric metric : {Metric::kL2, Metric::kL1, Metric::kLinf}) {
    for (int round = 0; round < 30; ++round) {
      const size_t n = rng.NextBounded(23);  // covers n<4 remainders too
      Batch b(dim);
      const Point q = RandomPoint(dim, &rng, 1.0);
      for (size_t i = 0; i < n; ++i) {
        // Half the candidates land near q so both verdicts occur.
        Point c = RandomPoint(dim, &rng, (i % 2) ? 0.05 : 1.0);
        if (i % 2) {
          for (size_t k = 0; k < dim; ++k) c[k] += q[k];
        }
        b.Add(c);
      }
      // A radius sweep bracketing the typical near-duplicate scale.
      for (double radius : {0.05, 0.2, 0.7}) {
        ExpectAllPathsMatch(b, q, metric, radius,
                            "dim=" + std::to_string(dim) + " metric=" +
                                MetricName(metric) + " r=" +
                                std::to_string(radius));
      }
    }
  }
}

TEST_P(KernelEquivalence, ExactBoundaryTies) {
  // Integer coordinates make the distance arithmetic exact, so these
  // candidates sit *precisely* on the threshold: d² == radius² (L2),
  // Σ|Δ| == radius (L1), max|Δ| == radius (L∞). The ≤ predicate must
  // report them inside, and the next-representable-smaller radius must
  // flip every one of them outside — on every dispatch path.
  const size_t dim = GetParam();
  Batch b(dim);
  const Point q(dim);  // origin
  Point tie(dim);
  tie[0] = 3.0;
  if (dim > 1) tie[dim - 1] = 4.0;
  b.Add(tie);          // the boundary candidate
  Point inside(dim);
  inside[0] = 1.0;
  b.Add(inside);
  Point outside(dim);
  outside[0] = 1000.0;
  b.Add(outside);

  const double l2_tie = dim > 1 ? 5.0 : 3.0;   // √(9+16) or √9
  const double l1_tie = dim > 1 ? 7.0 : 3.0;   // 3+4 or 3
  const double linf_tie = dim > 1 ? 4.0 : 3.0;
  const struct {
    Metric metric;
    double tie_radius;
  } cases[] = {{Metric::kL2, l2_tie},
               {Metric::kL1, l1_tie},
               {Metric::kLinf, linf_tie}};
  for (const auto& c : cases) {
    ExpectAllPathsMatch(b, q, c.metric, c.tie_radius, "tie");
    // On the tie the candidate is within…
    Bitmask out;
    DistanceOneToMany(b.store, q, b.slots.data(), b.slots.size(), c.metric,
                      c.tie_radius, &out);
    EXPECT_TRUE(out.Test(0)) << MetricName(c.metric);
    EXPECT_TRUE(out.Test(1));
    EXPECT_FALSE(out.Test(2));
    // …and one ulp below it is out.
    const double below = std::nextafter(c.tie_radius, 0.0);
    ExpectAllPathsMatch(b, q, c.metric, below, "below-tie");
    DistanceOneToMany(b.store, q, b.slots.data(), b.slots.size(), c.metric,
                      below, &out);
    EXPECT_FALSE(out.Test(0)) << MetricName(c.metric);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, KernelEquivalence,
                         ::testing::Values(1, 2, 5, 20, 64));

TEST(KernelDispatch, NameMatchesBuildConfiguration) {
  const std::string name = DistanceKernelDispatch();
#ifdef RL0_NO_SIMD
  EXPECT_EQ(name, "scalar");
#else
  EXPECT_TRUE(name == "avx2" || name == "scalar") << name;
#endif
}

TEST(KernelEquivalenceTest, RecycledArenaSlotsAddressCorrectPoints) {
  // Slot indices must address points correctly after free-list churn
  // (the sampler tables recycle arena slots through refilters/expiry).
  const size_t dim = 5;
  PointStore store(dim);
  Xoshiro256pp rng(77);
  std::vector<PointRef> refs;
  for (int i = 0; i < 32; ++i) refs.push_back(store.Add(RandomPoint(dim, &rng, 1.0)));
  for (int i = 0; i < 32; i += 2) store.Release(refs[i]);  // holes
  std::vector<PointRef> live;
  for (int i = 1; i < 32; i += 2) live.push_back(refs[i]);
  for (int i = 0; i < 8; ++i) live.push_back(store.Add(RandomPoint(dim, &rng, 1.0)));

  std::vector<uint32_t> slots;
  for (PointRef r : live) slots.push_back(store.SlotIndexOf(r));
  const Point q = RandomPoint(dim, &rng, 1.0);
  Bitmask out;
  DistanceOneToMany(store, q, slots.data(), slots.size(), Metric::kL2, 0.8,
                    &out);
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(out.Test(i),
              MetricWithinDistance(store.View(live[i]), q, 0.8, Metric::kL2));
  }
}

TEST(QuantizeAxesTest, MatchesScalarFormulaBitForBit) {
  Xoshiro256pp rng(0x9A37);
  for (size_t dim : {1ul, 2ul, 3ul, 4ul, 5ul, 7ul, 20ul, 64ul}) {
    for (int round = 0; round < 50; ++round) {
      const double side = 0.01 + rng.NextDouble() * 10.0;
      std::vector<double> p(dim), offset(dim);
      for (size_t i = 0; i < dim; ++i) {
        p[i] = (rng.NextDouble() * 2.0 - 1.0) * 1000.0;
        offset[i] = rng.NextDouble() * side;
        if (round % 5 == 0) p[i] = offset[i];  // boundary: exact cell edge
      }
      std::vector<int64_t> base(dim);
      std::vector<double> scaled(dim);
      QuantizeAxes(p.data(), offset.data(), dim, side, base.data(),
                   scaled.data());
      for (size_t i = 0; i < dim; ++i) {
        const int64_t b =
            static_cast<int64_t>(std::floor((p[i] - offset[i]) / side));
        const double expect_scaled =
            p[i] - (offset[i] + static_cast<double>(b) * side);
        EXPECT_EQ(base[i], b) << "dim=" << dim << " axis=" << i;
        // Bitwise comparison: the contract is exact, not approximate.
        EXPECT_EQ(std::memcmp(&scaled[i], &expect_scaled, sizeof(double)),
                  0)
            << "dim=" << dim << " axis=" << i;
      }
    }
  }
}

TEST(BitmaskTest, BasicOperations) {
  Bitmask m;
  m.Reset(0);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.FindFirst(), Bitmask::npos);
  m.Reset(200);  // spans multiple words (and the inline capacity)
  EXPECT_EQ(m.size(), 200u);
  EXPECT_EQ(m.Count(), 0u);
  m.Set(0);
  m.Set(63);
  m.Set(64);
  m.Set(199);
  EXPECT_TRUE(m.Test(0));
  EXPECT_TRUE(m.Test(63));
  EXPECT_TRUE(m.Test(64));
  EXPECT_TRUE(m.Test(199));
  EXPECT_FALSE(m.Test(1));
  EXPECT_EQ(m.Count(), 4u);
  EXPECT_EQ(m.FindFirst(), 0u);
  m.Reset(130);
  EXPECT_EQ(m.Count(), 0u);  // Reset clears prior bits
  m.Set(129);
  EXPECT_EQ(m.FindFirst(), 129u);
}

}  // namespace
}  // namespace rl0
