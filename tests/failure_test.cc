// Failure-path and edge-case tests: option validation errors, empty
// structures, degenerate geometries, and the documented corner behaviours
// (Algorithm 3 "error" accounting, k-sampling preconditions).

#include <gtest/gtest.h>

#include <limits>

#include "rl0/core/f0_iw.h"
#include "rl0/core/f0_sw.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/core/sw_fixed_sampler.h"
#include "rl0/core/sw_sampler.h"

namespace rl0 {
namespace {

SamplerOptions GoodOptions() {
  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 1.0;
  opts.seed = 1;
  return opts;
}

TEST(OptionsValidationTest, RejectsEachBadField) {
  {
    SamplerOptions o = GoodOptions();
    o.dim = 0;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    SamplerOptions o = GoodOptions();
    o.alpha = 0.0;
    EXPECT_FALSE(o.Validate().ok());
    o.alpha = -1.0;
    EXPECT_FALSE(o.Validate().ok());
    o.alpha = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(o.Validate().ok());
    o.alpha = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    SamplerOptions o = GoodOptions();
    o.side_mode = GridSideMode::kCustom;
    o.custom_side = 0.0;
    EXPECT_FALSE(o.Validate().ok());
    o.custom_side = 0.5;
    EXPECT_TRUE(o.Validate().ok());
  }
  {
    SamplerOptions o = GoodOptions();
    o.kappa0 = 0.0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    SamplerOptions o = GoodOptions();
    o.k = 0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    SamplerOptions o = GoodOptions();
    o.hash_family = HashFamily::kKWisePoly;
    o.kwise_k = 1;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    SamplerOptions o = GoodOptions();
    o.expected_stream_length = 0;
    EXPECT_FALSE(o.Validate().ok());
  }
}

TEST(OptionsValidationTest, ErrorMessagesNameTheField) {
  SamplerOptions o = GoodOptions();
  o.alpha = -2.0;
  EXPECT_NE(o.Validate().message().find("alpha"), std::string::npos);
  o = GoodOptions();
  o.dim = 0;
  EXPECT_NE(o.Validate().message().find("dim"), std::string::npos);
}

TEST(CustomSideModeTest, UsedVerbatim) {
  SamplerOptions o = GoodOptions();
  o.side_mode = GridSideMode::kCustom;
  o.custom_side = 0.77;
  auto sampler = RobustL0SamplerIW::Create(o).value();
  EXPECT_DOUBLE_EQ(sampler.grid().side(), 0.77);
}

TEST(IwFailureTest, SampleOnEmptyAndSampleKZero) {
  auto sampler = RobustL0SamplerIW::Create(GoodOptions()).value();
  Xoshiro256pp rng(2);
  EXPECT_FALSE(sampler.Sample(&rng).has_value());
  // k=0 from an empty sampler is trivially satisfiable.
  const auto empty = sampler.SampleK(0, &rng);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(IwFailureTest, SampleKTooManyIsFailedPrecondition) {
  auto sampler = RobustL0SamplerIW::Create(GoodOptions()).value();
  sampler.Insert(Point{0.0, 0.0});
  Xoshiro256pp rng(3);
  const auto r = sampler.SampleK(2, &rng);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(r.status().message().empty());
}

TEST(SwFailureTest, CreateRejectsBadWindows) {
  EXPECT_FALSE(RobustL0SamplerSW::Create(GoodOptions(), 0).ok());
  EXPECT_FALSE(RobustL0SamplerSW::Create(GoodOptions(), -1).ok());
  // Window so large the level count would exceed the hash's usable bits.
  EXPECT_FALSE(
      RobustL0SamplerSW::Create(GoodOptions(),
                                int64_t{1} << 62)
          .ok());
}

TEST(SwFailureTest, StandaloneFixedRateRejectsBadLevel) {
  const auto r =
      SwFixedRateSampler::CreateStandalone(GoodOptions(), 61, 100);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SwFailureTest, ErrorAndStuckCountersStartAtZero) {
  auto sampler = RobustL0SamplerSW::Create(GoodOptions(), 64).value();
  EXPECT_EQ(sampler.error_count(), 0u);
  EXPECT_EQ(sampler.stuck_split_count(), 0u);
}

TEST(SwFailureTest, TinyWindowTinyCapSurvives) {
  SamplerOptions o = GoodOptions();
  o.dim = 1;
  o.accept_cap = 1;
  auto sampler = RobustL0SamplerSW::Create(o, 2).value();
  Xoshiro256pp rng(5);
  for (int i = 0; i < 300; ++i) {
    sampler.Insert(Point{10.0 * i}, i);
    ASSERT_TRUE(sampler.Sample(i, &rng).has_value());
  }
}

TEST(F0FailureTest, CreatePropagatesSamplerErrors) {
  F0Options opts;
  opts.sampler = GoodOptions();
  opts.sampler.alpha = -1.0;
  EXPECT_FALSE(F0EstimatorIW::Create(opts).ok());
  F0SwOptions sw;
  sw.sampler = GoodOptions();
  sw.sampler.dim = 0;
  EXPECT_FALSE(F0EstimatorSW::Create(sw).ok());
}

TEST(DegenerateGeometryTest, IdenticalPointsOneGroup) {
  auto sampler = RobustL0SamplerIW::Create(GoodOptions()).value();
  for (int i = 0; i < 50; ++i) sampler.Insert(Point{1.0, 1.0});
  EXPECT_EQ(sampler.accept_size() + sampler.reject_size(), 1u);
}

TEST(DegenerateGeometryTest, VeryLargeCoordinates) {
  auto sampler = RobustL0SamplerIW::Create(GoodOptions()).value();
  sampler.Insert(Point{1e12, -1e12});
  sampler.Insert(Point{1e12 + 0.5, -1e12});  // same group
  sampler.Insert(Point{-1e12, 1e12});        // different group
  EXPECT_EQ(sampler.accept_size() + sampler.reject_size(), 2u);
}

TEST(DegenerateGeometryTest, NegativeCoordinatesAcrossCellBoundaries) {
  auto sampler = RobustL0SamplerIW::Create(GoodOptions()).value();
  sampler.Insert(Point{-0.25, -0.25});
  sampler.Insert(Point{0.25, 0.25});  // distance ~0.7 ≤ 1: same group
  EXPECT_EQ(sampler.accept_size() + sampler.reject_size(), 1u);
}

TEST(DegenerateGeometryTest, TinyAlpha) {
  SamplerOptions o = GoodOptions();
  o.alpha = 1e-9;
  auto sampler = RobustL0SamplerIW::Create(o).value();
  sampler.Insert(Point{0.0, 0.0});
  sampler.Insert(Point{1e-10, 0.0});  // within alpha
  sampler.Insert(Point{1e-6, 0.0});   // outside alpha
  EXPECT_EQ(sampler.accept_size() + sampler.reject_size(), 2u);
}

TEST(ResultContractTest, ValueOrOnCreateFailure) {
  SamplerOptions bad;
  const auto result = RobustL0SamplerIW::Create(bad);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rl0
