// Unit tests for rl0/geom: Point arithmetic and distance primitives.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "rl0/geom/point.h"
#include "rl0/geom/point_store.h"

namespace rl0 {
namespace {

TEST(PointTest, ConstructionAndAccess) {
  Point p{1.0, 2.0, 3.0};
  EXPECT_EQ(p.dim(), 3u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 3.0);
  p[1] = 7.0;
  EXPECT_DOUBLE_EQ(p[1], 7.0);
}

TEST(PointTest, ZeroInitialized) {
  Point p(4);
  EXPECT_EQ(p.dim(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(p[i], 0.0);
}

TEST(PointTest, FromVector) {
  std::vector<double> v{1.5, -2.5};
  Point p(v);
  EXPECT_EQ(p.dim(), 2u);
  EXPECT_DOUBLE_EQ(p[1], -2.5);
  EXPECT_EQ(p.coords(), v);
}

TEST(PointTest, Equality) {
  EXPECT_EQ(Point({1.0, 2.0}), Point({1.0, 2.0}));
  EXPECT_FALSE(Point({1.0, 2.0}) == Point({1.0, 2.1}));
  EXPECT_FALSE(Point({1.0}) == Point({1.0, 0.0}));
}

TEST(PointTest, Arithmetic) {
  Point a{1.0, 2.0};
  Point b{0.5, -1.0};
  Point sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 1.5);
  EXPECT_DOUBLE_EQ(sum[1], 1.0);
  Point diff = a - b;
  EXPECT_DOUBLE_EQ(diff[0], 0.5);
  EXPECT_DOUBLE_EQ(diff[1], 3.0);
  Point scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled[0], 2.0);
  EXPECT_DOUBLE_EQ(scaled[1], 4.0);
}

TEST(PointTest, Norm) {
  EXPECT_DOUBLE_EQ(Point({3.0, 4.0}).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(Point(7).Norm(), 0.0);
}

TEST(PointTest, ToStringContainsCoords) {
  const std::string s = Point({1.5, -2.0}).ToString();
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("-2"), std::string::npos);
}

TEST(DistanceTest, KnownValues) {
  Point a{0.0, 0.0};
  Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
}

TEST(DistanceTest, SymmetricAndNonNegative) {
  Point a{1.0, -2.0, 0.5};
  Point b{-0.5, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
  EXPECT_GE(Distance(a, b), 0.0);
}

TEST(DistanceTest, TriangleInequality) {
  Point a{0.0, 0.0};
  Point b{1.0, 1.0};
  Point c{2.0, 0.0};
  EXPECT_LE(Distance(a, c), Distance(a, b) + Distance(b, c) + 1e-12);
}

TEST(WithinDistanceTest, InclusiveBoundary) {
  Point a{0.0};
  Point b{1.0};
  EXPECT_TRUE(WithinDistance(a, b, 1.0));   // exactly at radius
  EXPECT_TRUE(WithinDistance(a, b, 1.5));
  EXPECT_FALSE(WithinDistance(a, b, 0.999));
}

TEST(MinPairwiseDistanceTest, BasicAndDegenerate) {
  std::vector<Point> pts{Point{0.0, 0.0}, Point{0.0, 3.0}, Point{4.0, 0.0}};
  EXPECT_DOUBLE_EQ(MinPairwiseDistance(pts), 3.0);
  std::vector<Point> one{Point{1.0}};
  EXPECT_TRUE(std::isinf(MinPairwiseDistance(one)));
  std::vector<Point> none;
  EXPECT_TRUE(std::isinf(MinPairwiseDistance(none)));
}

TEST(MinPairwiseDistanceTest, DuplicatePointsGiveZero) {
  std::vector<Point> pts{Point{1.0, 1.0}, Point{1.0, 1.0}};
  EXPECT_DOUBLE_EQ(MinPairwiseDistance(pts), 0.0);
}

// -------------------------------------------------- PointView / PointStore

TEST(PointViewTest, ViewsPointWithoutCopying) {
  Point p{1.0, 2.0, 3.0};
  PointView v = p;  // implicit conversion
  EXPECT_EQ(v.dim(), 3u);
  EXPECT_EQ(v.data(), p.data());
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_EQ(v.Materialize(), p);
}

TEST(PointViewTest, EqualityIsCoordinateWise) {
  Point a{1.0, 2.0};
  Point b{1.0, 2.0};
  Point c{1.0, 2.5};
  EXPECT_EQ(PointView(a), PointView(b));
  EXPECT_NE(PointView(a), PointView(c));
  EXPECT_NE(PointView(a), PointView(a.data(), 1));  // dim mismatch
}

TEST(PointViewTest, DistancePrimitivesAcceptMixedRepresentations) {
  Point a{0.0, 0.0};
  const double raw[2] = {3.0, 4.0};
  PointView b(raw, 2);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(b, a), 5.0);
  EXPECT_TRUE(WithinDistance(a, b, 5.0));
  EXPECT_FALSE(WithinDistance(a, b, 4.9));
}

TEST(PointStoreTest, AddViewRoundTrips) {
  PointStore store(3);
  const PointRef ref = store.Add(Point{1.0, 2.0, 3.0});
  ASSERT_TRUE(ref.valid());
  EXPECT_EQ(ref.dim, 3u);
  EXPECT_EQ(store.View(ref).Materialize(), Point({1.0, 2.0, 3.0}));
  EXPECT_EQ(store.live(), 1u);
  EXPECT_EQ(store.PayloadWords(), 3u);
}

TEST(PointStoreTest, SlotsAreContiguousAndRecycled) {
  PointStore store(2);
  const PointRef a = store.Add(Point{1.0, 1.0});
  const PointRef b = store.Add(Point{2.0, 2.0});
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(b.offset, 2u);  // flat buffer: consecutive slots
  store.Release(a);
  EXPECT_EQ(store.live(), 1u);
  const PointRef c = store.Add(Point{3.0, 3.0});
  EXPECT_EQ(c.offset, a.offset);  // freed slot reused, no growth
  EXPECT_EQ(store.capacity_slots(), 2u);
  EXPECT_EQ(store.View(b).Materialize(), Point({2.0, 2.0}));
  EXPECT_EQ(store.View(c).Materialize(), Point({3.0, 3.0}));
}

TEST(PointStoreTest, WriteOverwritesInPlace) {
  PointStore store(2);
  const PointRef ref = store.Add(Point{1.0, 1.0});
  store.Write(ref, Point{9.0, 8.0});
  EXPECT_EQ(store.View(ref).Materialize(), Point({9.0, 8.0}));
  EXPECT_EQ(store.live(), 1u);
}

TEST(PointStoreTest, CopyIsIndependent) {
  PointStore store(1);
  const PointRef ref = store.Add(Point{1.0});
  PointStore copy = store;
  copy.Write(ref, Point{5.0});
  EXPECT_EQ(store.View(ref).Materialize(), Point({1.0}));
  EXPECT_EQ(copy.View(ref).Materialize(), Point({5.0}));
}

}  // namespace
}  // namespace rl0
