// Statistical accuracy of the windowed sharded pipeline against the
// exact windowed partition baseline, at paper scale (a ≥50k-point
// stream) — the sliding-window companion of statistical_accuracy_test.cc.
//
// The workload is two-phase: 200 groups arrive uniformly through the
// first half of the stream, then half of them stop; a window covering
// only the second half makes groups 0..99 *expired* and 100..199 *live*
// with equal live arrival rates. Ground truth is ExactWindowGroups.
//
// Checks:
//   * hard window semantics — across every draw from every instance, an
//     expired group is NEVER reported (the window never leaks);
//   * chi-squared uniformity of sampled groups over the live set,
//     pooling draws from independent pool instances (fresh sampler
//     randomness per instance). Per-instance draws share the realized
//     level assignment, whose conditional law is only Θ(1)-uniform
//     (DESIGN.md §3 boundary bias), so the threshold carries a design-
//     effect allowance on top of the χ²(df=99) p≈0.001 critical value —
//     calibrated against the observed statistic (≈3x headroom), tight
//     enough to catch any systematic leak or starvation of a group;
//   * windowed F0 through the F0EstimatorSW pipeline lanes within the
//     estimator's constant-factor envelope.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "rl0/baseline/exact_partition.h"
#include "rl0/core/f0_sw.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

constexpr size_t kGroups = 200;
constexpr size_t kLiveGroups = 100;  // groups 100..199 survive phase 2
constexpr size_t kStreamLen = 50400;
constexpr int64_t kWindow = 20000;  // covers only phase-2 indices
constexpr uint64_t kDataSeed = 20180618;

/// group id per stream index (the generator's own labels; verified
/// against ExactWindowGroups below).
struct Workload {
  std::vector<Point> points;
  std::vector<uint32_t> group_of;
};

const Workload& SharedWorkload() {
  static const Workload* workload = [] {
    auto* w = new Workload();
    w->points.reserve(kStreamLen);
    w->group_of.reserve(kStreamLen);
    Xoshiro256pp rng(SplitMix64(kDataSeed));
    for (size_t i = 0; i < kStreamLen; ++i) {
      const bool phase2 = i >= kStreamLen / 2;
      const uint32_t g =
          phase2 ? static_cast<uint32_t>(kLiveGroups + rng.NextBounded(100))
                 : static_cast<uint32_t>(rng.NextBounded(kGroups));
      w->group_of.push_back(g);
      w->points.push_back(
          Point{10.0 * g + 0.3 * (rng.NextDouble() - 0.5)});
    }
    return w;
  }();
  return *workload;
}

SamplerOptions StatOptions(uint64_t seed) {
  SamplerOptions opts;
  opts.dim = 1;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.expected_stream_length = kStreamLen;
  return opts;
}

double ChiSquaredUniform(const std::vector<uint64_t>& counts,
                         uint64_t total) {
  const double expected =
      static_cast<double>(total) / static_cast<double>(counts.size());
  double stat = 0.0;
  for (uint64_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    stat += d * d / expected;
  }
  return stat;
}

TEST(SwStatisticalTest, WorkloadMatchesExactWindowedPartition) {
  const Workload& w = SharedWorkload();
  ASSERT_GE(w.points.size(), 50000u);
  const WindowedGroupTruth truth = ExactWindowGroups(
      w.points, 1.0, kWindow, static_cast<int64_t>(kStreamLen) - 1);
  EXPECT_EQ(truth.num_groups, kGroups);
  ASSERT_EQ(truth.live_groups.size(), kLiveGroups);
  // The generator's labels and the natural partition agree up to group
  // renumbering (NaturalPartition numbers groups by first arrival), and
  // exactly the phase-2 labels are live.
  std::vector<uint32_t> label_of(truth.num_groups, kGroups);
  for (size_t i = 0; i < w.points.size(); ++i) {
    uint32_t& label = label_of[truth.group_of[i]];
    if (label == kGroups) label = w.group_of[i];
    ASSERT_EQ(label, w.group_of[i]) << "index " << i;
  }
  for (uint32_t g : truth.live_groups) EXPECT_GE(label_of[g], kLiveGroups);
}

TEST(SwStatisticalTest, LiveWindowGroupsUniformExpiredNeverReported) {
  // Algorithm 3's uniformity guarantee is over the *sampler* randomness:
  // a realized state tracks only Θ(log²) of the live groups (that is the
  // point of the space bound), so the experiment averages over
  // independent pool instances AND over sliding query checkpoints —
  // the tracked set decorrelates as records churn through level resets.
  // Every draw is validated against the exact live set of its
  // checkpoint's window, which sweeps the expiry boundary across the
  // phase-1/phase-2 transition of the workload.
  const Workload& w = SharedWorkload();

  constexpr size_t kInstances = 12;
  constexpr int64_t kFirstCheckpoint = 40000;
  constexpr int64_t kCheckpointStep = 259;
  constexpr size_t kDrawsPerCheckpoint = 5;

  // Live set per checkpoint from the verified generator labels.
  const auto live_at = [&w](int64_t t) {
    std::vector<uint64_t> live(kGroups, 0);  // latest index + 1, 0 = dead
    for (int64_t i = t - kWindow + 1; i <= t; ++i) {
      if (i < 0) continue;
      uint64_t& latest = live[w.group_of[static_cast<size_t>(i)]];
      latest = std::max<uint64_t>(latest, static_cast<uint64_t>(i) + 1);
    }
    return live;
  };

  std::vector<uint64_t> counts(kGroups, 0);
  std::vector<double> expected(kGroups, 0.0);
  uint64_t total = 0;
  for (size_t inst = 0; inst < kInstances; ++inst) {
    auto pool =
        ShardedSwSamplerPool::Create(StatOptions(1000 + inst), kWindow, 4)
            .value();
    Xoshiro256pp rng(SplitMix64(50000 + inst));
    const Span<const Point> all(w.points);
    size_t offset = 0;
    for (int64_t t = kFirstCheckpoint;
         t < static_cast<int64_t>(kStreamLen); t += kCheckpointStep) {
      // Feed up to and including position t, then query the live window.
      pool.FeedBorrowed(
          all.subspan(offset, static_cast<size_t>(t) + 1 - offset));
      offset = static_cast<size_t>(t) + 1;
      pool.Drain();
      ASSERT_EQ(pool.now(), t);
      const std::vector<uint64_t> live = live_at(t);
      size_t live_count = 0;
      for (uint64_t l : live) live_count += l != 0;
      ASSERT_GT(live_count, 0u);
      for (size_t q = 0; q < kDrawsPerCheckpoint; ++q) {
        const auto sample = pool.SampleLatest(&rng);
        ASSERT_TRUE(sample.has_value());
        const uint32_t label = w.group_of[sample->stream_index];
        // Hard window semantics: an expired group never surfaces, and
        // the reported point lies inside the window.
        ASSERT_GT(static_cast<int64_t>(sample->stream_index), t - kWindow);
        ASSERT_LE(static_cast<int64_t>(sample->stream_index), t);
        ASSERT_NE(live[label], 0u)
            << "expired group " << label << " sampled at t=" << t;
        ++counts[label];
        ++total;
      }
      for (uint32_t g = 0; g < kGroups; ++g) {
        if (live[g] != 0) {
          expected[g] += static_cast<double>(kDrawsPerCheckpoint) /
                         static_cast<double>(live_count);
        }
      }
    }
  }

  // Uniformity over live groups: compare observed counts with the
  // accumulated per-checkpoint expectations. Algorithm 3's uniformity is
  // Θ(1)-approximate and holds over the sampler randomness; records that
  // settle at deep levels dominate the unified pool while they persist,
  // so draws are heavily positively correlated within an instance. At
  // this scale (12 instances × 41 checkpoints × 5 draws, legacy and flat
  // identically) the null lands at χ² ≈ 6000–9000 over df = 199, with a
  // handful of groups unsampled and tail ratios near 16x — the bounds
  // below keep ~3x headroom on those observed values. They still fail
  // hard on systematic starvation or a window leak (either drives the
  // statistic into six figures); the strict window-semantics pin is the
  // per-draw expired-group assertion above.
  double stat = 0.0;
  size_t cells = 0;
  for (uint32_t g = 0; g < kGroups; ++g) {
    if (expected[g] <= 0.0) {
      EXPECT_EQ(counts[g], 0u);
      continue;
    }
    const double d = static_cast<double>(counts[g]) - expected[g];
    stat += d * d / expected[g];
    ++cells;
  }
  EXPECT_EQ(cells, kGroups);  // every group is live at some checkpoint
  EXPECT_GT(total, 2000u);
  const double per_cell_expected =
      static_cast<double>(total) / static_cast<double>(cells);
  size_t covered = 0;
  for (uint32_t g = kLiveGroups; g < kGroups; ++g) {
    covered += counts[g] > 0;
    EXPECT_LT(static_cast<double>(counts[g]), 30.0 * per_cell_expected);
  }
  EXPECT_GE(covered, 80u) << "only " << covered
                          << "/100 always-live groups ever sampled";
  EXPECT_LT(stat, 25000.0) << "chi-squared " << stat;
}

TEST(SwStatisticalTest, TimeBasedExpiredNeverReported) {
  // The time-based variant of the hard window-semantics pin: the same
  // two-phase workload carries explicit stamps (jitter gaps in {1..3}),
  // the pool ingests them through the stamped pipeline chunks, and
  // across every draw from every instance no sample's stamp may lie
  // outside the query window (t - W, t]. Sliding the checkpoints across
  // the phase boundary sweeps the expiry horizon over the die-off, so a
  // leak of any phase-1-only group would surface here.
  const Workload& w = SharedWorkload();

  // Deterministic jitter stamps shared by all instances.
  std::vector<int64_t> stamps;
  stamps.reserve(kStreamLen);
  {
    Xoshiro256pp rng(SplitMix64(kDataSeed ^ 0x54696D65ULL));
    int64_t t = 0;
    for (size_t i = 0; i < kStreamLen; ++i) {
      t += 1 + static_cast<int64_t>(rng.NextBounded(3));
      stamps.push_back(t);
    }
  }
  // Mean gap 2: a window of 2·kWindow time units covers roughly the same
  // point population as the sequence test's kWindow positions.
  const int64_t time_window = 2 * kWindow;

  // Live set per checkpoint index: group -> has a point with stamp in
  // (stamps[t_idx] - time_window, stamps[t_idx]].
  const auto live_at = [&](size_t t_idx) {
    std::vector<char> live(kGroups, 0);
    const int64_t t = stamps[t_idx];
    for (size_t i = 0; i <= t_idx; ++i) {
      if (stamps[i] > t - time_window && stamps[i] <= t) {
        live[w.group_of[i]] = 1;
      }
    }
    return live;
  };

  constexpr size_t kInstances = 6;
  constexpr size_t kFirstCheckpoint = 40000;
  constexpr size_t kCheckpointStep = 521;
  constexpr size_t kDrawsPerCheckpoint = 5;

  size_t live_group_draws = 0;
  for (size_t inst = 0; inst < kInstances; ++inst) {
    auto pool = ShardedSwSamplerPool::Create(StatOptions(3000 + inst),
                                             time_window, 3)
                    .value();
    Xoshiro256pp rng(SplitMix64(60000 + inst));
    const Span<const Point> all(w.points);
    const Span<const int64_t> all_stamps(stamps);
    size_t offset = 0;
    for (size_t t_idx = kFirstCheckpoint; t_idx < kStreamLen;
         t_idx += kCheckpointStep) {
      pool.FeedStamped(all.subspan(offset, t_idx + 1 - offset),
                       all_stamps.subspan(offset, t_idx + 1 - offset));
      offset = t_idx + 1;
      pool.Drain();
      ASSERT_EQ(pool.now(), stamps[t_idx]);  // time mode: now = last stamp
      const std::vector<char> live = live_at(t_idx);
      for (size_t q = 0; q < kDrawsPerCheckpoint; ++q) {
        const auto sample = pool.SampleLatest(&rng);
        ASSERT_TRUE(sample.has_value());
        ASSERT_LT(sample->stream_index, kStreamLen);
        const int64_t stamp = stamps[sample->stream_index];
        // Hard pin: the reported point's stamp lies inside the window...
        ASSERT_GT(stamp, stamps[t_idx] - time_window)
            << "expired stamp " << stamp << " sampled at t="
            << stamps[t_idx];
        ASSERT_LE(stamp, stamps[t_idx]);
        // ... and its group is live by the exact stamp-window truth.
        ASSERT_NE(live[w.group_of[sample->stream_index]], 0)
            << "expired group sampled at t=" << stamps[t_idx];
        ++live_group_draws;
      }
    }
  }
  EXPECT_GT(live_group_draws, 500u);
}

TEST(SwStatisticalTest, WindowedF0WithinEnvelopeThroughPipeline) {
  const Workload& w = SharedWorkload();
  F0SwOptions opts;
  opts.sampler = StatOptions(77);
  opts.window = kWindow;
  opts.copies = 16;
  auto est = F0EstimatorSW::Create(opts).value();
  // Feed through the per-copy pipeline lanes (the serial path is pinned
  // bit-identical by construction: stamps derive from the chunk base).
  const Span<const Point> all(w.points);
  for (size_t offset = 0; offset < all.size(); offset += 4096) {
    est.Feed(all.subspan(offset, 4096));
  }
  est.Drain();
  const double truth = static_cast<double>(kLiveGroups);
  const double estimate = est.EstimateLatest();
  // The FM combiner promises a constant-factor estimate; with 16 copies
  // the repo-wide envelope is [truth/3, truth*3] (see f0_test.cc).
  EXPECT_GT(estimate, truth / 3.0);
  EXPECT_LT(estimate, truth * 3.0);
}

// Regression pin: F0EstimatorSW::Insert once updated its insertion
// counters (latest_stamp / points_processed) OUTSIDE the pipeline lock,
// while EnsurePipeline captures them as the pipeline's index base and
// LatchFeedMode validates them — so a first Feed racing the tail of a
// serial-insert phase could latch a torn index base and shift every
// subsequent stamp. The counters are now written under pipe_->mu
// (pinned by the clang thread-safety annotations at compile time); this
// test pins the runtime contract the lock protects: a serial prefix
// followed by concurrent pipeline Feeds continues the index/stamp
// sequence exactly — EstimateLatest evaluates at stamp kStreamLen-1,
// and with a stream-covering window the estimate lands in the envelope
// regardless of chunk interleaving. Runs under TSan in CI (this file is
// in the tsan job's battery).
TEST(SwStatisticalTest, SerialInsertThenConcurrentFeedContinuesStamps) {
  const Workload& w = SharedWorkload();
  F0SwOptions opts;
  opts.sampler = StatOptions(78);
  // Window covers the whole stream: the estimate then depends only on
  // the point set, not on the (interleaving-dependent) stamp each point
  // receives, so the check is deterministic under real concurrency.
  opts.window = static_cast<int64_t>(kStreamLen) + 1;
  opts.copies = 16;
  auto est = F0EstimatorSW::Create(opts).value();

  // Serial prefix: sequence-stamped inserts 0..399.
  constexpr size_t kPrefix = 400;
  for (size_t i = 0; i < kPrefix; ++i) est.Insert(w.points[i]);

  // Concurrent continuation: 4 threads feed the remaining 50000 points
  // in 2500-point chunks. The first Feed latches the index base at
  // kPrefix under the pipeline lock.
  constexpr size_t kChunk = 2500;
  constexpr size_t kThreads = 4;
  const Span<const Point> all(w.points);
  std::vector<std::thread> feeders;
  feeders.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    feeders.emplace_back([&, t] {
      for (size_t offset = kPrefix + t * kChunk; offset < all.size();
           offset += kThreads * kChunk) {
        est.Feed(all.subspan(offset, kChunk));
      }
    });
  }
  for (std::thread& th : feeders) th.join();
  est.Drain();

  // The stamp sequence continued across the serial/pipeline boundary:
  // the latest stamp is the last stream position, so EstimateLatest and
  // an explicit end-of-stream Estimate agree exactly.
  const double latest = est.EstimateLatest();
  const double at_end = est.Estimate(static_cast<int64_t>(kStreamLen) - 1);
  EXPECT_EQ(latest, at_end);

  // Everything is in-window: truth is the full group count.
  const double truth = static_cast<double>(kGroups);
  EXPECT_GT(latest, truth / 3.0);
  EXPECT_LT(latest, truth * 3.0);
}

}  // namespace
}  // namespace rl0
