// Structural invariants of the Algorithm 2/3 bookkeeping that the other
// suites exercise only implicitly: the key-value store A holds exactly one
// pair per candidate group with its value inside the window, subwindow
// Fact 3 (each non-empty level ends with an accepted latest point... as
// maintained by the split rule), and the split threshold restoration.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "rl0/core/sw_fixed_sampler.h"
#include "rl0/core/sw_sampler.h"

namespace rl0 {
namespace {

SamplerOptions BaseOptions(uint64_t seed) {
  SamplerOptions opts;
  opts.dim = 1;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.expected_stream_length = 1 << 16;
  return opts;
}

TEST(SwInvariantsTest, OnePairPerGroupValuesInWindow) {
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(1), 0, 20).value();
  Xoshiro256pp rng(2);
  for (int t = 0; t < 400; ++t) {
    // 30 groups revisited with jitter.
    const int g = static_cast<int>(rng.NextBounded(30));
    sampler->Insert(Point{10.0 * g + 0.3 * (rng.NextDouble() - 0.5)}, t);

    std::vector<GroupRecord> groups;
    sampler->SnapshotGroups(&groups);
    // (a) all latest stamps inside the window (t-20, t];
    // (b) representatives pairwise > alpha apart (one pair per group);
    // (c) latest point within alpha of its representative.
    for (size_t i = 0; i < groups.size(); ++i) {
      ASSERT_GT(groups[i].latest_stamp, t - 20);
      ASSERT_LE(groups[i].latest_stamp, t);
      ASSERT_LE(Distance(groups[i].rep, groups[i].latest), 1.0 + 1e-12);
      for (size_t j = i + 1; j < groups.size(); ++j) {
        ASSERT_GT(Distance(groups[i].rep, groups[j].rep), 1.0);
      }
    }
  }
}

TEST(SwInvariantsTest, RepIndexNeverAfterLatestIndex) {
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(3), 1, 50).value();
  Xoshiro256pp rng(4);
  for (int t = 0; t < 500; ++t) {
    const int g = static_cast<int>(rng.NextBounded(40));
    PreparedPoint prep;
    Point p{10.0 * g + 0.2 * (rng.NextDouble() - 0.5)};
    std::vector<uint64_t> adj;
    sampler->context().grid.AdjacentCells(p, 1.0, &adj);
    prep.point = &p;
    prep.stamp = t;
    prep.stream_index = static_cast<uint64_t>(t);
    prep.cell_key = sampler->context().grid.CellKeyOf(p);
    prep.adj_keys = &adj;
    sampler->InsertPrepared(prep);

    std::vector<GroupRecord> groups;
    sampler->SnapshotGroups(&groups);
    for (const GroupRecord& g2 : groups) {
      ASSERT_LE(g2.rep_index, g2.latest_index);
    }
  }
}

TEST(SwInvariantsTest, HierarchyGroupsPartitionAcrossLevels) {
  // A group representative tracked as *accepted* must appear at exactly
  // one level (rejected bookkeeping entries may shadow it above).
  SamplerOptions opts = BaseOptions(5);
  opts.accept_cap = 8;
  auto sampler = RobustL0SamplerSW::Create(opts, 128).value();
  Xoshiro256pp rng(6);
  for (int t = 0; t < 1500; ++t) {
    const int g = static_cast<int>(rng.NextBounded(300));
    sampler.Insert(Point{10.0 * g + 0.2 * (rng.NextDouble() - 0.5)}, t);
    if (t % 100 != 99) continue;
    std::set<int> accepted_groups;
    for (size_t l = 0; l < sampler.num_levels(); ++l) {
      std::vector<GroupRecord> groups;
      sampler.level(l).SnapshotGroups(&groups);
      for (const GroupRecord& record : groups) {
        if (!record.accepted) continue;
        const int group = static_cast<int>(record.rep[0] / 10.0 + 0.5);
        ASSERT_TRUE(accepted_groups.insert(group).second)
            << "group " << group << " accepted at two levels, t=" << t;
      }
    }
  }
}

TEST(SwInvariantsTest, SplitRestoresCapAtThisLevel) {
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(7), 0, 1 << 20)
          .value();
  for (int i = 0; i < 100; ++i) sampler->Insert(Point{10.0 * i}, i);
  const size_t before = sampler->accept_size();
  std::vector<GroupRecord> promoted;
  ASSERT_TRUE(sampler->SplitPromote(&promoted));
  // Accounting: every previously accepted group is now kept, promoted as
  // accepted, or was demoted/dropped by the rate halving.
  size_t promoted_accepted = 0;
  for (const GroupRecord& g : promoted) promoted_accepted += g.accepted;
  EXPECT_LT(sampler->accept_size(), before);
  EXPECT_GT(promoted_accepted, 0u);
  EXPECT_LE(sampler->accept_size() + promoted_accepted, before);
  // The kept suffix is all unsampled at the next level (that is what
  // makes the split threshold effective).
  std::vector<GroupRecord> kept;
  sampler->SnapshotGroups(&kept);
  for (const GroupRecord& g : kept) {
    if (g.accepted) {
      EXPECT_FALSE(sampler->context().hasher.SampledAtLevel(g.rep_cell, 1));
    }
  }
}

TEST(SwInvariantsTest, ExpireIsIdempotent) {
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(9), 0, 10).value();
  for (int t = 0; t < 30; ++t) sampler->Insert(Point{10.0 * t}, t);
  sampler->Expire(35);
  const size_t after_first = sampler->group_count();
  sampler->Expire(35);
  EXPECT_EQ(sampler->group_count(), after_first);
  sampler->Expire(30);  // earlier horizon: no effect either
  EXPECT_EQ(sampler->group_count(), after_first);
}

}  // namespace
}  // namespace rl0
