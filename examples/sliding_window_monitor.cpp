// Sliding-window monitoring: "show me a random *recent* distinct event".
//
// Scenario: an event stream (sensor readings, log fingerprints) where the
// same underlying event repeats with jitter, and only the last hour
// matters. The hierarchical sliding-window sampler (paper Algorithm 3)
// maintains, in O(log w · log m) words, the ability to return a uniformly
// random distinct event among those seen in the last `window` time units —
// here with explicitly timestamped (time-based) arrivals.
//
// Build & run:  cmake --build build && ./build/examples/sliding_window_monitor

#include <cstdio>
#include <vector>

#include "rl0/core/sw_sampler.h"
#include "rl0/util/rng.h"

int main() {
  rl0::SamplerOptions options;
  options.dim = 3;
  options.alpha = 0.5;  // readings within 0.5 are the same event
  options.seed = 2024;
  options.expected_stream_length = 1 << 16;

  const int64_t window = 3600;  // "one hour" of simulated seconds
  auto created = rl0::RobustL0SamplerSW::Create(options, window);
  if (!created.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  rl0::RobustL0SamplerSW sampler = std::move(created).value();

  // Simulate 6 "hours": every ~4s an event fires. Events are drawn from a
  // slowly rotating population: event e lives at (e, 2e, 3e) * 10 and is
  // active for a limited time span, so the distinct population of each
  // window differs.
  rl0::Xoshiro256pp sim(5);
  int64_t now = 0;
  for (int tick = 0; tick < 5400; ++tick) {
    now += 1 + static_cast<int64_t>(sim.NextBounded(7));
    // Active events at time t: ids in [t/600, t/600 + 40).
    const uint64_t base_id = static_cast<uint64_t>(now / 600);
    const uint64_t id = base_id + sim.NextBounded(40);
    rl0::Point reading{10.0 * id + 0.2 * (sim.NextDouble() - 0.5),
                       20.0 * id + 0.2 * (sim.NextDouble() - 0.5),
                       30.0 * id + 0.2 * (sim.NextDouble() - 0.5)};
    sampler.Insert(reading, now);

    if (tick % 900 == 899) {
      rl0::Xoshiro256pp rng(static_cast<uint64_t>(now));
      std::printf("t=%6lld  levels in use:", static_cast<long long>(now));
      for (size_t l = 0; l < sampler.num_levels(); ++l) {
        std::printf(" %zu", sampler.level(l).accept_size());
      }
      std::printf("  space=%zu words\n", sampler.SpaceWords());
      for (int q = 0; q < 3; ++q) {
        const auto sample = sampler.Sample(now, &rng);
        if (sample.has_value()) {
          const uint64_t sampled_id =
              static_cast<uint64_t>(sample->point[0] / 10.0 + 0.5);
          std::printf("   random recent distinct event: id=%llu "
                      "(stream pos %llu)\n",
                      static_cast<unsigned long long>(sampled_id),
                      static_cast<unsigned long long>(sample->stream_index));
        }
      }
    }
  }
  std::printf("\nprocessed %llu readings; window=%lld; "
              "split/merge errors: %llu\n",
              static_cast<unsigned long long>(sampler.points_processed()),
              static_cast<long long>(window),
              static_cast<unsigned long long>(sampler.error_count()));
  return 0;
}
