// Quickstart: robust distinct sampling on a stream with near-duplicates.
//
// Scenario: a stream of 2-d feature vectors where each real-world entity
// appears many times with small perturbations (re-uploads, re-encodes,
// small edits). Standard distinct sampling would be biased toward entities
// with many near-duplicates; the robust ℓ0-sampler treats every point
// within distance α of an entity as that entity and samples entities
// uniformly — in O(log m) words of memory.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "rl0/core/iw_sampler.h"
#include "rl0/util/rng.h"

int main() {
  // 1. Configure: points live in R^2, near-duplicates are within α = 1.
  rl0::SamplerOptions options;
  options.dim = 2;
  options.alpha = 1.0;
  options.seed = 42;                       // reproducible
  options.expected_stream_length = 10000;  // sizes the κ0·log m cap

  auto created = rl0::RobustL0SamplerIW::Create(options);
  if (!created.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  rl0::RobustL0SamplerIW sampler = std::move(created).value();

  // 2. Stream: 50 entities at grid positions (10i, 10j); entity (i, j)
  // appears 1 + (i+j) times with jitter < α/2.
  rl0::Xoshiro256pp noise(7);
  uint64_t stream_len = 0;
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 5; ++j) {
      const int copies = 1 + i + j;
      for (int c = 0; c < copies; ++c) {
        rl0::Point p{10.0 * i + 0.4 * (noise.NextDouble() - 0.5),
                     10.0 * j + 0.4 * (noise.NextDouble() - 0.5)};
        sampler.Insert(p);
        ++stream_len;
      }
    }
  }

  // 3. Query: a uniformly random entity, any time, as often as you like.
  std::printf("stream length: %llu points, 50 underlying entities\n",
              static_cast<unsigned long long>(stream_len));
  std::printf("sampler state: |Sacc|=%zu |Srej|=%zu R=%llu space=%zu words\n",
              sampler.accept_size(), sampler.reject_size(),
              static_cast<unsigned long long>(sampler.rate_reciprocal()),
              sampler.SpaceWords());

  rl0::Xoshiro256pp query_rng(2024);
  for (int q = 0; q < 5; ++q) {
    const auto sample = sampler.Sample(&query_rng);
    if (!sample.has_value()) {
      std::printf("no sample available (probability <= 1/m event)\n");
      continue;
    }
    std::printf("sample %d: %s  (stream position %llu)\n", q,
                sample->point.ToString().c_str(),
                static_cast<unsigned long long>(sample->stream_index));
  }
  return 0;
}
