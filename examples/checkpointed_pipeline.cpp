// Checkpointed pipeline: surviving restarts, merging partitions, and
// tracking frequent entities — the "production" features around the core
// sampler.
//
// Scenario: a deduplicating ingestion pipeline processes a feed in two
// shards; each shard periodically checkpoints its sampler so a crash
// never loses the stream summary; at query time the shards are merged for
// global answers, and a heavy-hitters sketch reports the most re-posted
// entities.
//
// Build & run:  cmake --build build && ./build/examples/checkpointed_pipeline

#include <cstdio>
#include <string>

#include "rl0/core/heavy_hitters.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/core/snapshot.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

int main() {
  // A power-law duplicated feed, split across two shards round-robin.
  const rl0::BaseDataset base = rl0::RandomUniform(300, 4, 21, "Feed");
  rl0::NearDupOptions nd;
  nd.distribution = rl0::DupDistribution::kPowerLaw;
  nd.seed = 23;
  const rl0::NoisyDataset feed = rl0::MakeNearDuplicates(base, nd);
  std::printf("feed: %zu posts, %zu distinct entities, two shards\n",
              feed.size(), feed.num_groups);

  rl0::SamplerOptions opts;
  opts.dim = feed.dim;
  opts.alpha = feed.alpha;
  opts.seed = 99;  // MUST be shared across shards for mergeability
  opts.expected_stream_length = feed.size();

  auto shard_a = rl0::RobustL0SamplerIW::Create(opts).value();
  auto shard_b = rl0::RobustL0SamplerIW::Create(opts).value();

  rl0::HeavyHittersOptions hh_opts;
  hh_opts.dim = feed.dim;
  hh_opts.alpha = feed.alpha;
  hh_opts.capacity = 32;
  hh_opts.seed = 7;
  auto hot = rl0::RobustHeavyHitters::Create(hh_opts).value();

  std::string checkpoint_a;
  for (size_t i = 0; i < feed.points.size(); ++i) {
    (i % 2 == 0 ? shard_a : shard_b).Insert(feed.points[i]);
    hot.Insert(feed.points[i]);
    // Periodic checkpoint of shard A...
    if (i == feed.points.size() / 2) {
      if (!rl0::SnapshotSampler(shard_a, &checkpoint_a).ok()) return 1;
      std::printf("checkpointed shard A at post %zu (%zu bytes)\n", i,
                  checkpoint_a.size());
    }
  }

  // ... simulate a crash of shard A right before the end: restore and
  // replay only its tail.
  auto restored = rl0::RestoreSampler(checkpoint_a).value();
  for (size_t i = feed.points.size() / 2 + 1; i < feed.points.size(); ++i) {
    if (i % 2 == 0) restored.Insert(feed.points[i]);
  }
  std::printf("restored shard A: %llu posts processed (crash survived)\n",
              static_cast<unsigned long long>(restored.points_processed()));

  // Merge the shards for a global distinct sample.
  if (!restored.AbsorbFrom(shard_b).ok()) return 1;
  rl0::Xoshiro256pp rng(2025);
  std::printf("\nthree uniform samples over ALL distinct entities:\n");
  for (int q = 0; q < 3; ++q) {
    if (const auto sample = restored.Sample(&rng)) {
      std::printf("  entity near %s\n", sample->point.ToString().c_str());
    }
  }

  std::printf("\nmost re-posted entities (SpaceSaving over groups):\n");
  for (const auto& entry : hot.TopK(5)) {
    std::printf("  ~%llu posts (±%llu)  rep %s\n",
                static_cast<unsigned long long>(entry.count),
                static_cast<unsigned long long>(entry.error),
                entry.representative.ToString().c_str());
  }
  return 0;
}
