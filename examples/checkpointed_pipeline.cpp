// Checkpointed pipeline: surviving restarts, merging partitions, and
// tracking frequent entities — the "production" features around the core
// sampler.
//
// Scenario: a deduplicating ingestion pipeline processes a feed through a
// two-shard ShardedSamplerPool — persistent worker threads, bounded chunk
// queues, backpressure (see core/ingest_pool.h). The stream arrives in
// chunks; mid-stream the pool is drained and shard 0 is checkpointed so a
// crash never loses the stream summary. At query time the shards are
// merged for global answers, and a heavy-hitters sketch reports the most
// re-posted entities.
//
// Build & run:  cmake --build build && ./build/checkpointed_pipeline

#include <cstdio>
#include <string>

#include "rl0/core/heavy_hitters.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/core/snapshot.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

int main() {
  // A power-law duplicated feed, processed in two pipeline shards.
  const rl0::BaseDataset base = rl0::RandomUniform(300, 4, 21, "Feed");
  rl0::NearDupOptions nd;
  nd.distribution = rl0::DupDistribution::kPowerLaw;
  nd.seed = 23;
  const rl0::NoisyDataset feed = rl0::MakeNearDuplicates(base, nd);
  std::printf("feed: %zu posts, %zu distinct entities, two shards\n",
              feed.size(), feed.num_groups);

  rl0::SamplerOptions opts;
  opts.dim = feed.dim;
  opts.alpha = feed.alpha;
  opts.seed = 99;  // MUST be shared across shards for mergeability
  opts.expected_stream_length = feed.size();

  // The pool partitions by global stream position: shard s consumes the
  // posts at positions ≡ s (mod 2), whatever the chunking below.
  auto pool = rl0::ShardedSamplerPool::Create(opts, 2).value();

  rl0::HeavyHittersOptions hh_opts;
  hh_opts.dim = feed.dim;
  hh_opts.alpha = feed.alpha;
  hh_opts.capacity = 32;
  hh_opts.seed = 7;
  auto hot = rl0::RobustHeavyHitters::Create(hh_opts).value();
  for (const rl0::Point& p : feed.points) hot.Insert(p);

  // Stream the feed through the pipeline in chunks; checkpoint shard 0
  // at the halfway drain.
  const rl0::Span<const rl0::Point> all(feed.points);
  const size_t half = all.size() / 2;
  const size_t chunk = 64;
  std::string checkpoint;
  size_t checkpointed_at = 0;
  for (size_t offset = 0; offset < all.size(); offset += chunk) {
    pool.FeedBorrowed(all.subspan(offset, chunk));
    if (checkpoint.empty() && offset + chunk >= half) {
      // Drain() is the barrier that makes shard state readable while the
      // stream keeps flowing afterwards.
      pool.Drain();
      if (!rl0::SnapshotSampler(pool.shard(0), &checkpoint).ok()) return 1;
      checkpointed_at = offset + chunk;
      std::printf("checkpointed shard 0 at post %zu (%zu bytes)\n",
                  checkpointed_at, checkpoint.size());
    }
  }
  pool.Drain();

  // ... simulate a crash of shard 0: restore the checkpoint and replay
  // only its residue class of the tail (positions ≡ 0 mod 2 — the same
  // partition the pool used, so the replay is exactly the lost stream).
  auto restored = rl0::RestoreSampler(checkpoint).value();
  restored.InsertStrided(all.subspan(checkpointed_at,
                                     all.size() - checkpointed_at),
                         /*start=*/checkpointed_at % 2 == 0 ? 0 : 1,
                         /*stride=*/2, /*index_base=*/checkpointed_at);
  std::printf("restored shard 0: %llu posts processed (crash survived)\n",
              static_cast<unsigned long long>(restored.points_processed()));

  // Merge the restored shard with the surviving shard 1 for a global
  // distinct sample.
  if (!restored.AbsorbFrom(pool.shard(1)).ok()) return 1;
  rl0::Xoshiro256pp rng(2025);
  std::printf("\nthree uniform samples over ALL distinct entities:\n");
  for (int q = 0; q < 3; ++q) {
    if (const auto sample = restored.Sample(&rng)) {
      std::printf("  entity near %s\n", sample->point.ToString().c_str());
    }
  }

  std::printf("\nmost re-posted entities (SpaceSaving over groups):\n");
  for (const auto& entry : hot.TopK(5)) {
    std::printf("  ~%llu posts (±%llu)  rep %s\n",
                static_cast<unsigned long long>(entry.count),
                static_cast<unsigned long long>(entry.error),
                entry.representative.ToString().c_str());
  }
  return 0;
}
