// Counting distinct entities under near-duplication (paper Section 5).
//
// Scenario: count how many distinct videos exist in a stream of uploads
// where every video appears as many slightly different encodings. A naive
// distinct counter over exact fingerprints counts every encoding; the
// robust F0 estimator counts *videos*: (1+ε)-approximation in the infinite
// window, constant-factor FM-style estimation in a sliding window.
//
// Build & run:  cmake --build build && ./build/examples/f0_estimation

#include <cstdio>
#include <set>
#include <vector>

#include "rl0/core/f0_iw.h"
#include "rl0/core/f0_sw.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

int main() {
  // 1500 "videos" in an 8-d feature space, 1-20 encodings each.
  const rl0::BaseDataset base = rl0::RandomUniform(1500, 8, 3, "Videos");
  rl0::NearDupOptions nd;
  nd.max_dups = 20;
  nd.seed = 5;
  const rl0::NoisyDataset stream = rl0::MakeNearDuplicates(base, nd);
  std::printf("stream: %zu uploads of %zu distinct videos\n", stream.size(),
              stream.num_groups);

  // --- Infinite window (whole history) ---------------------------------
  rl0::F0Options f0;
  f0.sampler.dim = stream.dim;
  f0.sampler.alpha = stream.alpha;
  f0.sampler.seed = 7;
  f0.epsilon = 0.15;
  f0.copies = 9;
  auto estimator = rl0::F0EstimatorIW::Create(f0).value();

  // Track how the estimate evolves as the stream unfolds.
  std::printf("\n%12s %12s %12s\n", "uploads", "estimate", "space(words)");
  size_t next_report = stream.size() / 4;
  for (size_t i = 0; i < stream.size(); ++i) {
    estimator.Insert(stream.points[i]);
    if (i + 1 == next_report || i + 1 == stream.size()) {
      std::printf("%12zu %12.0f %12zu\n", i + 1, estimator.Estimate(),
                  estimator.SpaceWords());
      next_report += stream.size() / 4;
    }
  }
  std::printf("truth: %zu distinct videos; naive exact-fingerprint count "
              "would report %zu\n",
              stream.num_groups, stream.size());

  // --- Sliding window (most recent uploads only) -----------------------
  rl0::F0SwOptions sw;
  sw.sampler.dim = stream.dim;
  sw.sampler.alpha = stream.alpha;
  sw.sampler.seed = 11;
  sw.window = static_cast<int64_t>(stream.size() / 8);
  sw.copies = 24;
  auto windowed = rl0::F0EstimatorSW::Create(sw).value();
  for (const rl0::Point& p : stream.points) windowed.Insert(p);

  // Exact count of groups in the final window for reference.
  std::set<uint32_t> truth_window;
  for (size_t i = stream.size() - static_cast<size_t>(sw.window);
       i < stream.size(); ++i) {
    truth_window.insert(stream.group_of[i]);
  }
  std::printf("\nsliding window (last %lld uploads): estimate %.0f, "
              "truth %zu, space %zu words\n",
              static_cast<long long>(sw.window), windowed.EstimateLatest(),
              truth_window.size(), windowed.SpaceWords());
  std::printf("(FM-style constant-factor estimate; raise copies for "
              "tighter concentration)\n");
  return 0;
}
