// Dedup analytics: why robustness matters on power-law duplicated data.
//
// Scenario from the paper's introduction: messages (tweets, forwarded
// chats) are re-sent with small edits, and popularity is power-law — the
// most viral message has ~n near-copies. Estimating "what does a typical
// distinct message look like?" with a standard distinct sampler is
// hopeless: the viral messages dominate. This example runs both samplers
// side by side on a power-law near-duplicate stream and prints how often
// each sampler returns one of the 10 most-duplicated entities, plus the
// robust estimate of the number of distinct entities (Section 5).
//
// Build & run:  cmake --build build && ./build/examples/dedup_analytics

#include <algorithm>
#include <cstdio>
#include <vector>

#include "rl0/baseline/standard_l0.h"
#include "rl0/core/f0_iw.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

int main() {
  // 200 "messages" in a 6-d feature space; duplicate counts ⌈n/rank⌉.
  const rl0::BaseDataset base = rl0::RandomUniform(200, 6, 11, "Messages");
  rl0::NearDupOptions nd;
  nd.distribution = rl0::DupDistribution::kPowerLaw;
  nd.seed = 13;
  const rl0::NoisyDataset stream = rl0::MakeNearDuplicates(base, nd);

  // Ground truth: group sizes, and the 10 heaviest groups.
  std::vector<int> group_size(stream.num_groups, 0);
  for (uint32_t g : stream.group_of) ++group_size[g];
  std::vector<uint32_t> by_weight(stream.num_groups);
  for (uint32_t g = 0; g < stream.num_groups; ++g) by_weight[g] = g;
  std::sort(by_weight.begin(), by_weight.end(),
            [&](uint32_t a, uint32_t b) {
              return group_size[a] > group_size[b];
            });
  std::vector<bool> heavy(stream.num_groups, false);
  int heavy_points = 0;
  for (int h = 0; h < 10; ++h) {
    heavy[by_weight[h]] = true;
    heavy_points += group_size[by_weight[h]];
  }
  std::printf("stream: %zu points, %zu distinct messages\n", stream.size(),
              stream.num_groups);
  std::printf("the 10 most-viral messages own %.1f%% of all points\n",
              100.0 * heavy_points / static_cast<double>(stream.size()));

  // Run many independent queries of each sampler.
  const int runs = 2000;
  int robust_heavy = 0, standard_heavy = 0, robust_total = 0;
  for (int run = 0; run < runs; ++run) {
    rl0::SamplerOptions opts;
    opts.dim = stream.dim;
    opts.alpha = stream.alpha;
    opts.seed = 1000 + run;
    opts.expected_stream_length = stream.size();
    auto robust = rl0::RobustL0SamplerIW::Create(opts).value();
    rl0::StandardL0Sampler standard(2000 + run);
    for (const rl0::Point& p : stream.points) {
      robust.Insert(p);
      standard.Insert(p);
    }
    rl0::Xoshiro256pp rng(3000 + run);
    if (const auto s = robust.Sample(&rng)) {
      ++robust_total;
      robust_heavy += heavy[stream.group_of[s->stream_index]];
    }
    if (const auto s = standard.Sample()) {
      standard_heavy += heavy[stream.group_of[s->stream_index]];
    }
  }
  std::printf("\nP[sample is one of the 10 viral messages] (target %.3f):\n",
              10.0 / static_cast<double>(stream.num_groups));
  std::printf("  robust l0-sampler   : %.3f\n",
              static_cast<double>(robust_heavy) / robust_total);
  std::printf("  standard l0-sampler : %.3f   <- biased toward viral\n",
              static_cast<double>(standard_heavy) / runs);

  // Bonus: how many distinct messages are there? (Section 5 estimator.)
  rl0::F0Options f0;
  f0.sampler.dim = stream.dim;
  f0.sampler.alpha = stream.alpha;
  f0.sampler.seed = 99;
  f0.epsilon = 0.2;
  auto estimator = rl0::F0EstimatorIW::Create(f0).value();
  estimator.InsertBatch(stream.points);  // chunked ingestion path
  std::printf("\nrobust F0 estimate: %.0f (truth: %zu; naive distinct count "
              "would report ~%zu)\n",
              estimator.Estimate(), stream.num_groups, stream.size());
  return 0;
}
