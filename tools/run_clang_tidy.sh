#!/usr/bin/env bash
# Runs the curated .clang-tidy profile over the library, tools, tests
# and benches. Usage:
#
#   ./tools/run_clang_tidy.sh [build-dir]
#
# The build dir must hold a compile_commands.json (the top-level
# CMakeLists.txt sets CMAKE_EXPORT_COMPILE_COMMANDS, so any configured
# build dir works; default: build). Exits 0 with a notice when
# clang-tidy is not installed — local GCC-only environments skip, the
# clang-tidy CI job enforces.
set -u
cd "$(dirname "$0")/.."

build_dir="${1:-build}"

tidy="$(command -v clang-tidy || true)"
if [ -z "$tidy" ]; then
  echo "clang-tidy not found; skipping (the clang-tidy CI job enforces)"
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "no $build_dir/compile_commands.json — configure first:" >&2
  echo "  cmake -B $build_dir -S ." >&2
  exit 1
fi

# Everything we compile ourselves; third-party (_deps) is excluded by
# construction since we list files, not the compilation database. The
# negative-compile battery is excluded too: its violation files are
# never built, so they have no compile command (and two of them must
# not even compile).
files="$(find src tools tests bench examples \
         \( -name '*.cc' -o -name '*.cpp' \) \
         -not -path 'tests/thread_annotation_compile_test/*' | sort)"

# run-clang-tidy parallelizes when available; fall back to a serial loop.
runner="$(command -v run-clang-tidy || true)"
if [ -n "$runner" ]; then
  # shellcheck disable=SC2086
  "$runner" -p "$build_dir" -quiet $files
  exit $?
fi

status=0
for f in $files; do
  "$tidy" -p "$build_dir" --quiet "$f" || status=1
done
exit "$status"
