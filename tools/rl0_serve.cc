// rl0_serve — standing-query streaming server for robust distinct
// sampling.
//
// Hosts a multi-tenant sampler registry behind a line protocol (see
// rl0/serve/protocol.h for the command set) on a unix socket and/or a
// loopback TCP port. Clients CREATE named tenants, FEED them point
// streams, SAMPLE their sliding windows, and SUBSCRIBE to standing
// queries that push periodic digests, F0 watermarks and churn alerts.
//
// Usage:
//   rl0_serve (--unix PATH | --port N | --port 0) [options]
//     --unix PATH          listen on a unix-domain socket
//     --port N             listen on loopback TCP port N (0 = pick an
//                          ephemeral port and print it)
//     --threads N          worker-fleet threads shared by all tenants
//                          (default 4)
//     --checkpoint-dir D   root for per-tenant checkpoints (enables
//                          CREATE ... ckpt=1 / recover=1)
//     --queue-depth N      per-connection output queue capacity, in
//                          protocol units (default 64)
//     --max-line BYTES     longest accepted protocol line (default 1MiB)
//
// On startup the server prints one "listening ..." line per bound
// endpoint to stdout and flushes — scripts wait for that line before
// connecting. SIGINT/SIGTERM shut down in order: stop accepting, flush
// and close every tenant (final checkpoint cuts, standing queries
// fire), close sessions.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "rl0/serve/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Fail(const std::string& message) {
  std::fprintf(stderr, "rl0_serve: %s\n", message.c_str());
  return 1;
}

bool ParseSize(const char* text, long long* out) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  rl0::serve::Server::Options options;
  bool port_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    long long value = 0;
    if (arg == "--unix" && has_value) {
      options.unix_path = argv[++i];
    } else if (arg == "--port" && has_value) {
      if (!ParseSize(argv[++i], &value) || value > 65535) {
        return Fail("bad --port");
      }
      // Protocol: 0 asks the kernel for an ephemeral port (the Server
      // API spells that -1; its 0 means "no TCP").
      options.tcp_port = value == 0 ? -1 : static_cast<int>(value);
      port_set = true;
    } else if (arg == "--threads" && has_value) {
      if (!ParseSize(argv[++i], &value) || value < 1 || value > 256) {
        return Fail("bad --threads");
      }
      options.fleet_threads = static_cast<size_t>(value);
    } else if (arg == "--checkpoint-dir" && has_value) {
      options.checkpoint_root = argv[++i];
    } else if (arg == "--queue-depth" && has_value) {
      if (!ParseSize(argv[++i], &value) || value < 1) {
        return Fail("bad --queue-depth");
      }
      options.event_queue_depth = static_cast<size_t>(value);
    } else if (arg == "--max-line" && has_value) {
      if (!ParseSize(argv[++i], &value) || value < 16) {
        return Fail("bad --max-line");
      }
      options.max_line_bytes = static_cast<size_t>(value);
    } else {
      return Fail("unknown or incomplete option '" + arg +
                  "' (want --unix PATH, --port N, --threads N, "
                  "--checkpoint-dir D, --queue-depth N, --max-line BYTES)");
    }
  }
  if (options.unix_path.empty() && !port_set) {
    return Fail("need --unix PATH and/or --port N");
  }

  auto server = rl0::serve::Server::Start(options);
  if (!server.ok()) return Fail(server.status().ToString());

  if (!options.unix_path.empty()) {
    std::printf("listening unix %s\n", options.unix_path.c_str());
  }
  if (server.value()->tcp_port() != 0) {
    std::printf("listening tcp 127.0.0.1:%d\n", server.value()->tcp_port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down\n");
  std::fflush(stdout);
  server.value()->Shutdown();
  return 0;
}
