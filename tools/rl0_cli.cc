// rl0_cli — robust distinct sampling from the command line.
//
// Subcommands:
//   sample    draw robust ℓ0-samples from a CSV point stream
//   count     estimate the robust number of distinct entities (F0)
//   stats     exact group statistics of a (small) CSV stream
//   generate  emit one of the paper's synthetic noisy datasets as CSV
//
// Run `rl0_cli help` (or any subcommand with --help) for usage. The tool
// reads CSV point streams (one point per line; see rl0/stream/csv.h) from
// a file or stdin ("-").

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "rl0/baseline/exact_partition.h"
#include "rl0/core/checkpoint.h"
#include "rl0/core/f0_iw.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/core/reorder_buffer.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/serve/checkpointer.h"
#include "rl0/stream/csv.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"
#include "rl0/stream/window_stream.h"

namespace {

using rl0::Point;

constexpr const char* kUsage = R"(rl0_cli — robust distinct sampling on noisy point streams

usage: rl0_cli <command> [options] [file.csv | -]

commands:
  sample    --alpha A [--k N] [--window W] [--time] [--metric l2|l1|linf]
            [--reservoir] [--seed S] [--queries Q] [--shards S]
            [--no-filter] [--lateness L]
            [--checkpoint-dir D [--checkpoint-every N]]
            Draw Q robust l0-samples (default 1). With --window W, sample
            from the last W points instead of the whole stream. With
            --shards S > 1, ingest through the persistent S-worker
            pipeline and sample from the merged shards (works with and
            without --window; the windowed pool stamps points with their
            global stream position). With --window W --time, the window
            is time-based: the CSV gains a leading integer stamp column
            (non-decreasing arrival times) and W counts time units, not
            points; sharded ingestion routes the stamps through the
            pipeline's stamped chunks. With --time --lateness L > 0, the
            stamp column may instead run up to L time units behind its
            running maximum: a bounded-lateness reorder stage restores
            sorted order (and propagates watermarks) before feeding, so
            the output is identical to sampling the stamp-sorted file.
            Rows beyond the bound are a line-numbered parse error.
            With --checkpoint-dir D (pool paths: --window with
            --shards > 1), every fed chunk is journaled to D/journal.log
            and a checkpoint chain is cut into D — ckpt-000000.full,
            then incremental ckpt-NNNNNN.delta files every N points
            (--checkpoint-every; default: one final cut at end of
            stream). `recover` rebuilds the pool from those files.
  recover   --checkpoint-dir D [--queries Q] [--seed S]
            Rebuild a pool from D: fold the delta chain onto the full
            checkpoint, replay the journal's surviving suffix (torn
            tails from a crash are fine), and draw Q samples from the
            recovered window — bit-identical to a run that never went
            down (see core/checkpoint.h for the exact contract).
  count     --alpha A [--epsilon E] [--seed S] [--parallel] [--no-filter]
            (1+E)-approximate the number of distinct entities. With
            --parallel, the estimator copies ingest on pipeline workers.
  stats     --alpha A
            Exact group partition statistics (quadratic; small inputs).
  generate  --dataset rand5|rand20|yacht|seeds [--powerlaw] [--seed S]
            [--time [--max-gap G] [--lateness L]]
            Print one of the paper's noisy evaluation streams as CSV.
            With --time, prefix each row with a non-decreasing integer
            stamp (inter-arrival gaps uniform in {1..G}, default G=4) —
            the input format of `sample --window --time`. Adding
            --lateness L > 0 disorders the rows within the bound L
            (stamps run at most L behind their running maximum) — the
            input format of `sample --window --time --lateness L`.
  help      Show this message.

Input '-' (or no file) reads CSV points from stdin: one point per line,
coordinates separated by commas or whitespace; '#' starts a comment.

--no-filter disables the duplicate-suppression front-end (identical
output either way — the front-end never changes decisions; the summary
lines report its hit/miss/bypass counters).
)";

struct Args {
  std::string command;
  std::string file = "-";
  double alpha = 0.0;
  double epsilon = 0.2;
  std::string metric = "l2";
  std::string dataset;
  std::string checkpoint_dir;
  uint64_t checkpoint_every = 0;
  bool powerlaw = false;
  bool reservoir = false;
  bool parallel = false;
  bool time = false;
  bool no_filter = false;
  uint32_t max_gap = 4;
  uint64_t seed = 0;
  size_t k = 1;
  size_t shards = 1;
  int64_t window = 0;
  int64_t lateness = 0;
  int queries = 1;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "rl0_cli: %s\n", message.c_str());
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args, std::string* error) {
  if (argc < 2) {
    *error = "missing command (try `rl0_cli help`)";
    return false;
  }
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    const auto next_str = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    if (arg == "--alpha") {
      if (!next(&args->alpha)) {
        *error = "--alpha needs a value";
        return false;
      }
    } else if (arg == "--epsilon") {
      if (!next(&args->epsilon)) {
        *error = "--epsilon needs a value";
        return false;
      }
    } else if (arg == "--seed") {
      double v;
      if (!next(&v)) {
        *error = "--seed needs a value";
        return false;
      }
      args->seed = static_cast<uint64_t>(v);
    } else if (arg == "--k") {
      double v;
      if (!next(&v)) {
        *error = "--k needs a value";
        return false;
      }
      args->k = static_cast<size_t>(v);
    } else if (arg == "--window") {
      double v;
      if (!next(&v)) {
        *error = "--window needs a value";
        return false;
      }
      args->window = static_cast<int64_t>(v);
    } else if (arg == "--queries") {
      double v;
      if (!next(&v)) {
        *error = "--queries needs a value";
        return false;
      }
      args->queries = static_cast<int>(v);
    } else if (arg == "--metric") {
      if (!next_str(&args->metric)) {
        *error = "--metric needs a value";
        return false;
      }
    } else if (arg == "--dataset") {
      if (!next_str(&args->dataset)) {
        *error = "--dataset needs a value";
        return false;
      }
    } else if (arg == "--checkpoint-dir") {
      if (!next_str(&args->checkpoint_dir)) {
        *error = "--checkpoint-dir needs a directory";
        return false;
      }
    } else if (arg == "--checkpoint-every") {
      double v;
      if (!next(&v)) {
        *error = "--checkpoint-every needs a value";
        return false;
      }
      if (!(v >= 1.0 && v <= 9e18)) {  // cast of a negative/huge double is UB
        *error = "--checkpoint-every must be in [1, 9e18]";
        return false;
      }
      args->checkpoint_every = static_cast<uint64_t>(v);
    } else if (arg == "--shards") {
      double v;
      if (!next(&v)) {
        *error = "--shards needs a value";
        return false;
      }
      args->shards = static_cast<size_t>(v);
    } else if (arg == "--lateness") {
      double v;
      if (!next(&v)) {
        *error = "--lateness needs a value";
        return false;
      }
      if (!(v >= 0.0 && v <= 9e18)) {  // cast of a negative/huge double is UB
        *error = "--lateness must be in [0, 9e18]";
        return false;
      }
      args->lateness = static_cast<int64_t>(v);
    } else if (arg == "--max-gap") {
      double v;
      if (!next(&v)) {
        *error = "--max-gap needs a value";
        return false;
      }
      if (!(v >= 1.0 && v <= 1e9)) {  // cast of a negative/huge double is UB
        *error = "--max-gap must be in [1, 1e9]";
        return false;
      }
      args->max_gap = static_cast<uint32_t>(v);
    } else if (arg == "--time") {
      args->time = true;
    } else if (arg == "--no-filter") {
      args->no_filter = true;
    } else if (arg == "--parallel") {
      args->parallel = true;
    } else if (arg == "--powerlaw") {
      args->powerlaw = true;
    } else if (arg == "--reservoir") {
      args->reservoir = true;
    } else if (arg == "--help") {
      args->command = "help";
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      *error = "unknown option '" + arg + "'";
      return false;
    } else {
      args->file = arg;
    }
  }
  return true;
}

rl0::Result<std::vector<Point>> LoadPoints(const Args& args) {
  if (args.file == "-") return rl0::ParseCsvPoints(std::cin);
  return rl0::ReadCsvPoints(args.file);
}

// ------------------------------------------- checkpointing (pool paths)

/// The journal + incremental-chain machinery lives in
/// rl0/serve/checkpointer.h so the standing-query server shares the
/// exact on-disk layout with this tool.
using PoolCheckpointer = rl0::serve::PoolCheckpointer;

/// Runs one checkpointer call that the CLI treats as fatal (exit 2).
bool CheckpointOk(const rl0::Status& status) {
  if (status.ok()) return true;
  std::fprintf(stderr, "rl0_cli: checkpoint failed: %s\n",
               status.ToString().c_str());
  return false;
}

std::string CheckpointNote(const PoolCheckpointer* ckpt) {
  if (ckpt == nullptr) return std::string();
  char buf[64];
  std::snprintf(buf, sizeof(buf), " checkpoints=%zu journal=%zuB",
                ckpt->cuts(), ckpt->journal_bytes());
  return buf;
}

/// Renders duplicate-suppression counters for the summary lines
/// (core/dup_filter.h; bypass counts points the front-end never saw —
/// filter disabled or absorbed from another sampler).
std::string FilterNote(const rl0::DupFilterStats& stats) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), " filter hit=%llu miss=%llu bypass=%llu",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.bypassed));
  return buf;
}

/// Renders reorder-stage counters for the summary lines of the
/// bounded-lateness paths (core/reorder_buffer.h). Empty when the stage
/// was never engaged.
std::string LateNote(const rl0::ReorderStats& stats) {
  if (stats.offered == 0) return std::string();
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                " late offered=%llu released=%llu dropped=%llu",
                static_cast<unsigned long long>(stats.offered),
                static_cast<unsigned long long>(stats.released),
                static_cast<unsigned long long>(stats.late_dropped));
  return buf;
}

rl0::Result<rl0::Metric> ParseMetric(const std::string& name) {
  if (name == "l2") return rl0::Metric::kL2;
  if (name == "l1") return rl0::Metric::kL1;
  if (name == "linf") return rl0::Metric::kLinf;
  return rl0::Status::InvalidArgument("unknown metric '" + name + "'");
}

/// `sample --window W --time`: time-based windows over a stamped CSV
/// stream (leading integer stamp column). Pointwise for one shard; the
/// stamped pipeline chunks (adaptively sized) for several.
int RunSampleTime(const Args& args, rl0::Metric metric) {
  if (args.window <= 0) return Fail("--time requires --window W > 0");
  rl0::Result<rl0::StampedCsv> stream =
      args.file == "-" ? rl0::ParseCsvStampedPoints(std::cin, args.lateness)
                       : rl0::ReadCsvStampedPoints(args.file, args.lateness);
  if (!stream.ok()) return Fail(stream.status().ToString());
  const std::vector<Point>& points = stream.value().points;
  const std::vector<int64_t>& stamps = stream.value().stamps;
  if (points.empty()) return Fail("no points in input");

  rl0::SamplerOptions opts;
  opts.dim = points[0].dim();
  opts.alpha = args.alpha;
  opts.metric = metric;
  opts.seed = args.seed;
  opts.k = args.k;
  opts.random_representative = args.reservoir;
  opts.expected_stream_length = points.size();
  opts.dup_filter = !args.no_filter;
  opts.allowed_lateness = args.lateness;

  // On the bounded-lateness path the samplers see the reorder stage's
  // released sequence, so a sampled stream_index addresses the
  // canonically sorted stream, not the file order — and the parse bound
  // guarantees nothing is beyond-bound, so the released sequence is
  // exactly the canonical sort of the whole file. Report (and run the
  // expiry self-check) against that sequence.
  std::vector<Point> sorted_points;
  std::vector<int64_t> sorted_stamps;
  if (args.lateness > 0) {
    sorted_points = points;
    sorted_stamps = stamps;
    rl0::ReorderStage::SortCanonical(&sorted_points, &sorted_stamps);
  }
  const std::vector<int64_t>& fed_stamps =
      args.lateness > 0 ? sorted_stamps : stamps;

  rl0::Xoshiro256pp rng(rl0::SplitMix64(args.seed ^ 0x5175657279ULL));
  const int64_t query_now = fed_stamps.back();
  const auto report = [&](const rl0::SampleItem& item) -> int {
    const int64_t stamp = fed_stamps[item.stream_index];
    if (stamp <= query_now - args.window) {
      // Window semantics are a hard guarantee; surfacing an expired
      // member would mean the sampler (not the data) is broken.
      return Fail("internal error: expired stamp sampled");
    }
    std::printf("%s  # stream position %llu stamp %lld\n",
                item.point.ToString().c_str(),
                static_cast<unsigned long long>(item.stream_index),
                static_cast<long long>(stamp));
    return 0;
  };

  if (args.shards > 1) {
    auto pool = rl0::ShardedSwSamplerPool::Create(opts, args.window,
                                                  args.shards);
    if (!pool.ok()) return Fail(pool.status().ToString());
    rl0::ShardedSwSamplerPool sw_pool = std::move(pool).value();
    std::unique_ptr<PoolCheckpointer> ckpt;
    if (!args.checkpoint_dir.empty()) {
      ckpt = std::make_unique<PoolCheckpointer>(&sw_pool, args.checkpoint_dir,
                                                args.checkpoint_every,
                                                opts.dim);
    }
    const rl0::Span<const Point> all_points(points);
    const rl0::Span<const int64_t> all_stamps(stamps);
    const size_t chunk = 4096;
    if (args.lateness > 0) {
      // Bounded-lateness ingestion: the pool's reorder stage restores
      // sorted order and broadcasts watermarks chunk by chunk.
      for (size_t offset = 0; offset < all_points.size(); offset += chunk) {
        sw_pool.FeedStampedLate(all_points.subspan(offset, chunk),
                                all_stamps.subspan(offset, chunk));
        if (ckpt && !CheckpointOk(ckpt->MaybeCut())) return 2;
      }
      sw_pool.FlushLate();
    } else if (ckpt) {
      // Fixed chunks so checkpoint cuts land between feeds.
      for (size_t offset = 0; offset < all_points.size(); offset += chunk) {
        sw_pool.FeedStamped(all_points.subspan(offset, chunk),
                            all_stamps.subspan(offset, chunk));
        if (!CheckpointOk(ckpt->MaybeCut())) return 2;
      }
    } else {
      sw_pool.FeedStampedAdaptive(points, stamps);
    }
    sw_pool.Drain();
    if (ckpt && !CheckpointOk(ckpt->Finish())) return 2;
    for (int q = 0; q < args.queries; ++q) {
      const auto sample = sw_pool.SampleLatest(&rng);
      if (!sample.has_value()) return Fail("window is empty");
      const int rc = report(*sample);
      if (rc != 0) return rc;
    }
    std::fprintf(stderr,
                 "[time-based windowed pipeline: %zu shards, %llu points, "
                 "window=%lld time units, now=%lld, space=%zu words%s]\n",
                 sw_pool.num_shards(),
                 static_cast<unsigned long long>(sw_pool.points_processed()),
                 static_cast<long long>(args.window),
                 static_cast<long long>(sw_pool.now()),
                 sw_pool.SpaceWords(),
                 (FilterNote(sw_pool.FilterStats()) +
                  LateNote(sw_pool.late_stats()) + CheckpointNote(ckpt.get()))
                     .c_str());
    return 0;
  }

  auto sampler = rl0::RobustL0SamplerSW::Create(opts, args.window);
  if (!sampler.ok()) return Fail(sampler.status().ToString());
  rl0::RobustL0SamplerSW sw = std::move(sampler).value();
  if (args.lateness > 0) {
    for (size_t i = 0; i < points.size(); ++i) {
      sw.InsertStampedLate(points[i], stamps[i]);
    }
    sw.FlushLate();
  } else {
    for (size_t i = 0; i < points.size(); ++i) {
      sw.Insert(points[i], stamps[i]);
    }
  }
  for (int q = 0; q < args.queries; ++q) {
    const auto sample = sw.SampleLatest(&rng);
    if (!sample.has_value()) return Fail("window is empty");
    const int rc = report(*sample);
    if (rc != 0) return rc;
  }
  std::fprintf(stderr,
               "[time-based window=%lld time units, now=%lld, "
               "space=%zu words%s]\n",
               static_cast<long long>(args.window),
               static_cast<long long>(sw.watermark()), sw.SpaceWords(),
               (FilterNote(sw.filter_stats()) + LateNote(sw.late_stats()))
                   .c_str());
  return 0;
}

int RunSample(const Args& args) {
  if (args.alpha <= 0.0) return Fail("sample requires --alpha > 0");
  if (args.checkpoint_every > 0 && args.checkpoint_dir.empty()) {
    return Fail("--checkpoint-every requires --checkpoint-dir");
  }
  if (!args.checkpoint_dir.empty() &&
      (args.window <= 0 || args.shards <= 1)) {
    return Fail(
        "--checkpoint-dir needs a pool path: --window W > 0 and "
        "--shards > 1");
  }
  const auto metric = ParseMetric(args.metric);
  if (!metric.ok()) return Fail(metric.status().ToString());
  if (args.time) return RunSampleTime(args, metric.value());
  const auto points = LoadPoints(args);
  if (!points.ok()) return Fail(points.status().ToString());
  if (points.value().empty()) return Fail("no points in input");

  rl0::SamplerOptions opts;
  opts.dim = points.value()[0].dim();
  opts.alpha = args.alpha;
  opts.metric = metric.value();
  opts.seed = args.seed;
  opts.k = args.k;
  opts.random_representative = args.reservoir;
  opts.expected_stream_length = points.value().size();
  opts.dup_filter = !args.no_filter;

  rl0::Xoshiro256pp rng(rl0::SplitMix64(args.seed ^ 0x5175657279ULL));
  if (args.window > 0) {
    if (args.shards > 1) {
      // Windowed sharded pipeline: S persistent worker lanes, global-
      // residue partition, stamps = global stream positions.
      auto pool = rl0::ShardedSwSamplerPool::Create(opts, args.window,
                                                    args.shards);
      if (!pool.ok()) return Fail(pool.status().ToString());
      rl0::ShardedSwSamplerPool sw_pool = std::move(pool).value();
      std::unique_ptr<PoolCheckpointer> ckpt;
      if (!args.checkpoint_dir.empty()) {
        ckpt = std::make_unique<PoolCheckpointer>(
            &sw_pool, args.checkpoint_dir, args.checkpoint_every, opts.dim);
      }
      const rl0::Span<const Point> all(points.value());
      const size_t chunk = 4096;
      for (size_t offset = 0; offset < all.size(); offset += chunk) {
        sw_pool.FeedBorrowed(all.subspan(offset, chunk));
        if (ckpt && !CheckpointOk(ckpt->MaybeCut())) return 2;
      }
      sw_pool.Drain();
      if (ckpt && !CheckpointOk(ckpt->Finish())) return 2;
      for (int q = 0; q < args.queries; ++q) {
        const auto sample = sw_pool.SampleLatest(&rng);
        if (!sample.has_value()) return Fail("window is empty");
        std::printf("%s  # stream position %llu\n",
                    sample->point.ToString().c_str(),
                    static_cast<unsigned long long>(sample->stream_index));
      }
      std::fprintf(stderr,
                   "[windowed pipeline: %zu shards, %llu points, "
                   "window=%lld, space=%zu words%s]\n",
                   sw_pool.num_shards(),
                   static_cast<unsigned long long>(
                       sw_pool.points_processed()),
                   static_cast<long long>(args.window),
                   sw_pool.SpaceWords(),
                   (FilterNote(sw_pool.FilterStats()) +
                    CheckpointNote(ckpt.get()))
                       .c_str());
      return 0;
    }
    auto sampler = rl0::RobustL0SamplerSW::Create(opts, args.window);
    if (!sampler.ok()) return Fail(sampler.status().ToString());
    rl0::RobustL0SamplerSW sw = std::move(sampler).value();
    sw.InsertBatch(points.value());
    for (int q = 0; q < args.queries; ++q) {
      const auto sample = sw.SampleLatest(&rng);
      if (!sample.has_value()) return Fail("window is empty");
      std::printf("%s  # stream position %llu\n",
                  sample->point.ToString().c_str(),
                  static_cast<unsigned long long>(sample->stream_index));
    }
    std::fprintf(stderr, "[window=%lld, space=%zu words%s]\n",
                 static_cast<long long>(args.window), sw.SpaceWords(),
                 FilterNote(sw.filter_stats()).c_str());
    return 0;
  }

  // Build the queried sampler: either one sampler fed directly, or the
  // merge of a persistent sharded pipeline's worker lanes.
  rl0::Result<rl0::RobustL0SamplerIW> sampler =
      rl0::Status::Internal("unreachable");
  if (args.shards > 1) {
    auto pool = rl0::ShardedSamplerPool::Create(opts, args.shards);
    if (!pool.ok()) return Fail(pool.status().ToString());
    rl0::ShardedSamplerPool pipeline = std::move(pool).value();
    const rl0::Span<const Point> all(points.value());
    const size_t chunk = 4096;
    for (size_t offset = 0; offset < all.size(); offset += chunk) {
      pipeline.FeedBorrowed(all.subspan(offset, chunk));
    }
    pipeline.Drain();
    sampler = pipeline.Merged();
    if (sampler.ok()) {
      // Per-lane front-end counters; the merged sampler's own counters
      // would list every absorbed point as bypassed.
      std::fprintf(stderr, "[pipeline: %zu shards, %llu points%s]\n",
                   pipeline.num_shards(),
                   static_cast<unsigned long long>(
                       pipeline.points_processed()),
                   FilterNote(pipeline.FilterStats()).c_str());
    }
  } else {
    sampler = rl0::RobustL0SamplerIW::Create(opts);
    if (sampler.ok()) sampler.value().InsertBatch(points.value());
  }
  if (!sampler.ok()) return Fail(sampler.status().ToString());
  rl0::RobustL0SamplerIW iw = std::move(sampler).value();
  for (int q = 0; q < args.queries; ++q) {
    if (args.k > 1) {
      const auto samples = iw.SampleK(args.k, &rng);
      if (!samples.ok()) return Fail(samples.status().ToString());
      for (const auto& s : samples.value()) {
        std::printf("%s  # stream position %llu\n",
                    s.point.ToString().c_str(),
                    static_cast<unsigned long long>(s.stream_index));
      }
    } else {
      const auto sample = iw.Sample(&rng);
      if (!sample.has_value()) return Fail("no sample available");
      std::printf("%s  # stream position %llu\n",
                  sample->point.ToString().c_str(),
                  static_cast<unsigned long long>(sample->stream_index));
    }
  }
  // The pool branch already reported its per-lane counters above.
  const std::string fnote =
      args.shards > 1 ? std::string() : FilterNote(iw.filter_stats());
  std::fprintf(stderr, "[groups accepted=%zu rejected=%zu R=%llu "
               "space=%zu words%s]\n",
               iw.accept_size(), iw.reject_size(),
               static_cast<unsigned long long>(iw.rate_reciprocal()),
               iw.SpaceWords(), fnote.c_str());
  return 0;
}

int RunRecover(const Args& args) {
  if (args.checkpoint_dir.empty()) {
    return Fail("recover requires --checkpoint-dir DIR");
  }
  // Fold the on-disk chain (a missing journal means the run checkpointed
  // but never flushed a record past the last cut — recovery from the cut
  // alone is exact).
  auto chain = rl0::serve::LoadCheckpointChain(args.checkpoint_dir);
  if (!chain.ok()) return Fail(chain.status().ToString());
  auto recovered =
      rl0::RecoverPool(chain.value().checkpoint, chain.value().journal);
  if (!recovered.ok()) return Fail(recovered.status().ToString());
  rl0::ShardedSwSamplerPool pool = std::move(recovered).value();

  rl0::Xoshiro256pp rng(rl0::SplitMix64(args.seed ^ 0x5175657279ULL));
  for (int q = 0; q < args.queries; ++q) {
    const auto sample = pool.SampleLatest(&rng);
    if (!sample.has_value()) return Fail("window is empty");
    std::printf("%s  # stream position %llu\n",
                sample->point.ToString().c_str(),
                static_cast<unsigned long long>(sample->stream_index));
  }
  // Replay rebuilt the duplicate filter and reorder stage too — report
  // their counters just like the sample paths do, so a recovered run's
  // summary is directly comparable to the original's.
  std::fprintf(stderr,
               "[recovered pool: %zu shards, %llu points, now=%lld, "
               "space=%zu words; chain=1 full + %zu deltas, journal=%zuB%s]\n",
               pool.num_shards(),
               static_cast<unsigned long long>(pool.points_processed()),
               static_cast<long long>(pool.now()), pool.SpaceWords(),
               chain.value().deltas, chain.value().journal.size(),
               (FilterNote(pool.FilterStats()) + LateNote(pool.late_stats()))
                   .c_str());
  return 0;
}

int RunCount(const Args& args) {
  if (args.alpha <= 0.0) return Fail("count requires --alpha > 0");
  const auto points = LoadPoints(args);
  if (!points.ok()) return Fail(points.status().ToString());
  if (points.value().empty()) return Fail("no points in input");

  rl0::F0Options opts;
  opts.sampler.dim = points.value()[0].dim();
  opts.sampler.alpha = args.alpha;
  opts.sampler.seed = args.seed;
  opts.sampler.expected_stream_length = points.value().size();
  opts.sampler.dup_filter = !args.no_filter;
  opts.epsilon = args.epsilon;
  auto est = rl0::F0EstimatorIW::Create(opts);
  if (!est.ok()) return Fail(est.status().ToString());
  rl0::F0EstimatorIW estimator = std::move(est).value();
  if (args.parallel) {
    // Every estimator copy is a pipeline lane with its own worker.
    const rl0::Span<const Point> all(points.value());
    const size_t chunk = 4096;
    for (size_t offset = 0; offset < all.size(); offset += chunk) {
      estimator.Feed(all.subspan(offset, chunk));
    }
    estimator.Drain();
  } else {
    estimator.InsertBatch(points.value());
  }
  std::printf("%.0f\n", estimator.Estimate());
  std::fprintf(stderr,
               "[distinct entities, (1+%.2f)-approx; %zu points scanned; "
               "space=%zu words%s]\n",
               args.epsilon, points.value().size(), estimator.SpaceWords(),
               FilterNote(estimator.FilterStats()).c_str());
  return 0;
}

int RunStats(const Args& args) {
  if (args.alpha <= 0.0) return Fail("stats requires --alpha > 0");
  const auto points = LoadPoints(args);
  if (!points.ok()) return Fail(points.status().ToString());
  const std::vector<Point>& pts = points.value();
  if (pts.empty()) return Fail("no points in input");
  const rl0::Partition natural = rl0::NaturalPartition(pts, args.alpha);
  const rl0::Partition greedy = rl0::GreedyPartition(pts, args.alpha);
  std::vector<size_t> sizes(natural.num_groups, 0);
  for (uint32_t g : natural.group_of) ++sizes[g];
  size_t max_size = 0;
  for (size_t s : sizes) max_size = std::max(max_size, s);
  std::printf("points\t%zu\n", pts.size());
  std::printf("dim\t%zu\n", pts[0].dim());
  std::printf("alpha\t%g\n", args.alpha);
  std::printf("groups (connected components)\t%zu\n", natural.num_groups);
  std::printf("groups (greedy ball carving)\t%zu\n", greedy.num_groups);
  std::printf("largest group\t%zu\n", max_size);
  std::printf("mean group size\t%.2f\n",
              static_cast<double>(pts.size()) /
                  static_cast<double>(natural.num_groups));
  return 0;
}

int RunGenerate(const Args& args) {
  rl0::BaseDataset base;
  if (args.dataset == "rand5") {
    base = rl0::Rand5(args.seed + 1);
  } else if (args.dataset == "rand20") {
    base = rl0::Rand20(args.seed + 2);
  } else if (args.dataset == "yacht") {
    base = rl0::YachtLike(args.seed + 3);
  } else if (args.dataset == "seeds") {
    base = rl0::SeedsLike(args.seed + 4);
  } else {
    return Fail("--dataset must be rand5|rand20|yacht|seeds");
  }
  rl0::NearDupOptions nd;
  nd.distribution = args.powerlaw ? rl0::DupDistribution::kPowerLaw
                                  : rl0::DupDistribution::kUniform;
  nd.seed = args.seed;
  const rl0::NoisyDataset noisy = rl0::MakeNearDuplicates(base, nd);
  std::printf("# %s: %zu points, %zu groups, alpha=%.17g\n",
              noisy.name.c_str(), noisy.size(), noisy.num_groups,
              noisy.alpha);
  if (args.time) {
    // Leading stamp column: the input format of sample --window --time.
    std::vector<rl0::StampedPoint> stamped =
        rl0::TimeStamped(noisy, args.max_gap, args.seed);
    if (args.lateness > 0) {
      // Bounded disorder: the input format of the --lateness sample path.
      stamped = rl0::DisorderWithinBound(stamped, args.lateness, args.seed);
    }
    std::vector<Point> points;
    std::vector<int64_t> stamps;
    rl0::SplitStamped(stamped, &points, &stamps);
    rl0::WriteCsvStampedPoints(points, stamps, std::cout);
    return 0;
  }
  rl0::WriteCsvPoints(noisy.points, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  std::string error;
  if (!ParseArgs(argc, argv, &args, &error)) return Fail(error);
  if (args.command == "help" || args.command == "--help") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (args.command == "sample") return RunSample(args);
  if (args.command == "recover") return RunRecover(args);
  if (args.command == "count") return RunCount(args);
  if (args.command == "stats") return RunStats(args);
  if (args.command == "generate") return RunGenerate(args);
  return Fail("unknown command '" + args.command + "' (try `rl0_cli help`)");
}
