// rl0_client — command-line client for rl0_serve.
//
// Connects to a running server over its unix socket or loopback TCP
// port and speaks the line protocol (rl0/serve/protocol.h).
//
// Usage:
//   rl0_client (--unix PATH | --port N) [mode]
//
// Modes (exactly one):
//   <command> [<command> ...]   send each protocol command in order,
//                               print every response line; exits
//                               non-zero if any command got an ERR.
//   --feed-csv FILE             stream a CSV point file to a tenant as
//       --tenant T              FEED (or FEEDSTAMPED with --stamped,
//       [--chunk N]             for CSVs with a leading stamp column)
//       [--stamped]             commands of N points each (default 512),
//       [--lateness L]          then print the final "OK fed=" tally;
//                               --lateness admits stamps up to L behind
//                               the file's running maximum (late-mode
//                               tenants).
//   --raw                       forward stdin lines verbatim, print
//                               everything the server sends until EOF.
//   --listen SECONDS            print whatever arrives (EVENT blocks
//                               from standing queries) for N seconds.
//
// Coordinates are re-printed with %.17g on the feed path, so the double
// values the server parses are bit-identical to the ones rl0_cli parses
// from the same CSV — the CI smoke test relies on this to diff server
// samples against one-shot CLI samples.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "rl0/serve/protocol.h"
#include "rl0/stream/csv.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "rl0_client: %s\n", message.c_str());
  return 1;
}

int Connect(const std::string& unix_path, int port) {
  if (!unix_path.empty()) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (unix_path.size() >= sizeof(addr.sun_path)) return -1;
    std::strncpy(addr.sun_path, unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads protocol lines; hands each to `line_fn`, which returns true to
/// keep reading. Returns false on EOF/error before line_fn stopped.
template <typename LineFn>
bool ReadLines(int fd, LineFn line_fn) {
  rl0::serve::LineDecoder decoder(1 << 20);
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    decoder.Append(buf, static_cast<size_t>(n));
    std::string line;
    for (;;) {
      const auto event = decoder.Next(&line);
      if (event == rl0::serve::LineDecoder::Event::kNone) break;
      if (event == rl0::serve::LineDecoder::Event::kOversized) continue;
      if (!line_fn(line)) return true;
    }
  }
}

/// Reads and prints one command's response: data lines, then the OK/ERR
/// status line. EVENT blocks riding between responses are printed and
/// skipped (they never end a response). Returns 0 on OK, 1 on ERR, 2 on
/// a dropped connection.
int ReadResponse(int fd) {
  bool in_event = false;
  int result = 2;
  const bool clean = ReadLines(fd, [&](const std::string& line) {
    std::printf("%s\n", line.c_str());
    if (in_event) {
      if (line == "END") in_event = false;
      return true;
    }
    if (line.rfind("EVENT", 0) == 0) {
      in_event = true;
      return true;
    }
    if (line.rfind("OK", 0) == 0) {
      result = 0;
      return false;
    }
    if (line.rfind("ERR", 0) == 0) {
      result = 1;
      return false;
    }
    return true;  // a data line (ITEM/DATA/STAT)
  });
  std::fflush(stdout);
  return clean ? result : 2;
}

int RunCommands(int fd, const std::vector<std::string>& commands) {
  int rc = 0;
  for (const std::string& command : commands) {
    if (!SendAll(fd, command + "\n")) return Fail("connection lost");
    const int one = ReadResponse(fd);
    if (one == 2) return Fail("connection closed mid-response");
    if (one != 0) rc = 1;
  }
  return rc;
}

int RunFeedCsv(int fd, const std::string& file, const std::string& tenant,
               size_t chunk, bool stamped, int64_t lateness) {
  std::vector<rl0::Point> points;
  std::vector<int64_t> stamps;
  if (stamped) {
    auto csv = rl0::ReadCsvStampedPoints(file, lateness);
    if (!csv.ok()) return Fail(csv.status().ToString());
    points = std::move(csv.value().points);
    stamps = std::move(csv.value().stamps);
  } else {
    auto csv = rl0::ReadCsvPoints(file);
    if (!csv.ok()) return Fail(csv.status().ToString());
    points = std::move(csv).value();
  }
  if (points.empty()) return Fail("no points in " + file);

  uint64_t fed = 0;
  char num[40];
  for (size_t offset = 0; offset < points.size(); offset += chunk) {
    const size_t end = std::min(points.size(), offset + chunk);
    std::string command =
        (stamped ? "FEEDSTAMPED " : "FEED ") + tenant;
    for (size_t i = offset; i < end; ++i) {
      command += ' ';
      if (stamped) {
        std::snprintf(num, sizeof(num), "%lld@",
                      static_cast<long long>(stamps[i]));
        command += num;
      }
      for (size_t d = 0; d < points[i].dim(); ++d) {
        // %.17g round-trips doubles exactly through the server's strtod.
        std::snprintf(num, sizeof(num), "%.17g", points[i][d]);
        if (d > 0) command += ',';
        command += num;
      }
    }
    if (!SendAll(fd, command + "\n")) return Fail("connection lost");
    // Swallow this batch's response quietly; report the final tally.
    bool ok = false;
    const bool clean = ReadLines(fd, [&](const std::string& line) {
      if (line.rfind("EVENT", 0) == 0 || line.rfind("ITEM", 0) == 0 ||
          line.rfind("DATA", 0) == 0 || line == "END") {
        return true;
      }
      ok = line.rfind("OK", 0) == 0;
      if (!ok) std::fprintf(stderr, "rl0_client: %s\n", line.c_str());
      return false;
    });
    if (!clean || !ok) return Fail("feed rejected");
    fed += end - offset;
  }
  std::printf("fed %llu points to %s\n",
              static_cast<unsigned long long>(fed), tenant.c_str());
  return 0;
}

int RunRaw(int fd) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!SendAll(fd, line + "\n")) return Fail("connection lost");
    if (ReadResponse(fd) == 2) return Fail("connection closed");
  }
  return 0;
}

int RunListen(int fd, int seconds) {
  rl0::serve::LineDecoder decoder(1 << 20);
  char buf[4096];
  const int deadline_ms = seconds * 1000;
  int waited = 0;
  while (waited < deadline_ms) {
    pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) {
      waited += 100;
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    decoder.Append(buf, static_cast<size_t>(n));
    std::string line;
    while (decoder.Next(&line) == rl0::serve::LineDecoder::Event::kLine) {
      std::printf("%s\n", line.c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  int port = 0;
  std::string feed_csv;
  std::string tenant;
  size_t chunk = 512;
  bool stamped = false;
  long long lateness = 0;
  bool raw = false;
  int listen_seconds = 0;
  std::vector<std::string> commands;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--unix" && has_value) {
      unix_path = argv[++i];
    } else if (arg == "--port" && has_value) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--feed-csv" && has_value) {
      feed_csv = argv[++i];
    } else if (arg == "--tenant" && has_value) {
      tenant = argv[++i];
    } else if (arg == "--chunk" && has_value) {
      const int value = std::atoi(argv[++i]);
      if (value < 1) return Fail("bad --chunk");
      chunk = static_cast<size_t>(value);
    } else if (arg == "--stamped") {
      stamped = true;
    } else if (arg == "--lateness" && has_value) {
      lateness = std::atoll(argv[++i]);
      if (lateness < 0) return Fail("bad --lateness");
    } else if (arg == "--raw") {
      raw = true;
    } else if (arg == "--listen" && has_value) {
      listen_seconds = std::atoi(argv[++i]);
      if (listen_seconds < 1) return Fail("bad --listen");
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown or incomplete option '" + arg + "'");
    } else {
      commands.push_back(arg);
    }
  }
  if (unix_path.empty() && port == 0) {
    return Fail("need --unix PATH or --port N");
  }
  if (!feed_csv.empty() && tenant.empty()) {
    return Fail("--feed-csv requires --tenant T");
  }

  const int fd = Connect(unix_path, port);
  if (fd < 0) return Fail("cannot connect");
  int rc;
  if (!feed_csv.empty()) {
    rc = RunFeedCsv(fd, feed_csv, tenant, chunk, stamped, lateness);
  } else if (raw) {
    rc = RunRaw(fd);
  } else if (listen_seconds > 0) {
    rc = RunListen(fd, listen_seconds);
  } else if (!commands.empty()) {
    rc = RunCommands(fd, commands);
  } else {
    ::close(fd);
    return Fail("nothing to do (give commands, --feed-csv, --raw or "
                "--listen)");
  }
  ::close(fd);
  return rc;
}
