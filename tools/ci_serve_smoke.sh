#!/usr/bin/env bash
# Differential smoke for the standing-query server: rl0_serve driven
# through rl0_client must return samples BYTE-IDENTICAL to the offline
# `rl0_cli sample` pipeline in all three windowing modes (sequence,
# time, bounded-lateness), given the same sampler options, window,
# shard count, seed and expected stream length (m=...).
#
# The only permitted divergence: the CLI's time-mode output appends
# " stamp N" (it keeps the full stamp array; the server does not), so
# that suffix is stripped from the CLI side before diffing.
#
# Usage: tools/ci_serve_smoke.sh [build-dir]   (default: build)
set -euo pipefail

BUILD=${1:-build}
for bin in rl0_cli rl0_serve rl0_client; do
  [[ -x "$BUILD/$bin" ]] || { echo "missing $BUILD/$bin" >&2; exit 1; }
done

TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  [[ -n "$SERVER_PID" ]] && wait "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

# One dataset per mode, shared seed so m is identical.
"$BUILD/rl0_cli" generate --dataset rand5 --seed 7 > "$TMP/seq.csv"
"$BUILD/rl0_cli" generate --dataset rand5 --seed 7 --time > "$TMP/time.csv"
"$BUILD/rl0_cli" generate --dataset rand5 --seed 7 --time --lateness 50 \
  > "$TMP/late.csv"
M=$(grep -vc '^#' "$TMP/seq.csv")
echo "smoke: $M points per stream"

"$BUILD/rl0_serve" --unix "$TMP/sock" --threads 4 \
  --checkpoint-dir "$TMP/ck" > "$TMP/server.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 100); do
  grep -q listening "$TMP/server.log" 2>/dev/null && break
  sleep 0.1
done
grep -q listening "$TMP/server.log" || {
  echo "server never came up:" >&2; cat "$TMP/server.log" >&2; exit 1;
}

client() { "$BUILD/rl0_client" --unix "$TMP/sock" "$@"; }

client \
  "CREATE s dim=5 alpha=0.5 window=2000 shards=4 seed=42 m=$M" \
  "CREATE t dim=5 alpha=0.5 window=4000 mode=time shards=4 seed=42 m=$M" \
  "CREATE l dim=5 alpha=0.5 window=4000 mode=late lateness=50 shards=4 seed=42 m=$M"
client --feed-csv "$TMP/seq.csv" --tenant s --chunk 1000
client --feed-csv "$TMP/time.csv" --tenant t --stamped --chunk 1000
client --feed-csv "$TMP/late.csv" --tenant l --stamped --lateness 50 \
  --chunk 1000
client "FLUSH l" > /dev/null

client "SAMPLE s q=3 seed=42" | sed -n 's/^ITEM //p' > "$TMP/s.server"
client "SAMPLE t q=3 seed=42" | sed -n 's/^ITEM //p' > "$TMP/t.server"
client "SAMPLE l q=3 seed=42" | sed -n 's/^ITEM //p' > "$TMP/l.server"

"$BUILD/rl0_cli" sample --alpha 0.5 --window 2000 --shards 4 --seed 42 \
  --queries 3 "$TMP/seq.csv" 2> /dev/null > "$TMP/s.cli"
"$BUILD/rl0_cli" sample --alpha 0.5 --window 4000 --time --shards 4 \
  --seed 42 --queries 3 "$TMP/time.csv" 2> /dev/null \
  | sed 's/ stamp -\{0,1\}[0-9]*$//' > "$TMP/t.cli"
"$BUILD/rl0_cli" sample --alpha 0.5 --window 4000 --time --lateness 50 \
  --shards 4 --seed 42 --queries 3 "$TMP/late.csv" 2> /dev/null \
  | sed 's/ stamp -\{0,1\}[0-9]*$//' > "$TMP/l.cli"

for mode in s t l; do
  [[ -s "$TMP/$mode.server" ]] || {
    echo "smoke: mode $mode produced no samples" >&2; exit 1;
  }
  diff -u "$TMP/$mode.cli" "$TMP/$mode.server" || {
    echo "smoke: mode $mode diverged from rl0_cli" >&2; exit 1;
  }
done

# Checkpointed tenant round-trip: CLOSE then recover must return the
# same samples as before the restart of the tenant.
client \
  "CREATE ck dim=5 alpha=0.5 window=2000 shards=4 seed=42 m=$M ckpt=1 every=512" \
  > /dev/null
client --feed-csv "$TMP/seq.csv" --tenant ck --chunk 1000
client "SAMPLE ck q=3 seed=42" | sed -n 's/^ITEM //p' > "$TMP/ck.before"
client "CLOSE ck" > /dev/null
client \
  "CREATE ck dim=5 alpha=0.5 window=2000 shards=4 seed=42 m=$M ckpt=1 recover=1" \
  > /dev/null
client "SAMPLE ck q=3 seed=42" | sed -n 's/^ITEM //p' > "$TMP/ck.after"
diff -u "$TMP/ck.before" "$TMP/ck.after" || {
  echo "smoke: checkpoint recover diverged" >&2; exit 1;
}
diff -u "$TMP/s.cli" "$TMP/ck.after" > /dev/null || {
  echo "smoke: recovered tenant diverged from rl0_cli" >&2; exit 1;
}

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
grep -q "shutting down" "$TMP/server.log" || {
  echo "smoke: server did not shut down cleanly" >&2
  cat "$TMP/server.log" >&2
  exit 1
}
echo "smoke: all three modes byte-identical to rl0_cli; recover OK"
