#!/usr/bin/env bash
# Synchronization-primitive lint, three rules (comments are stripped
# before matching, so docs can still name the banned spellings):
#
#   1. Raw primitives: std::mutex / std::lock_guard / std::scoped_lock /
#      std::condition_variable / std::unique_lock are banned outside
#      src/rl0/util/sync.h. Everything concurrent goes through the
#      annotated rl0::Mutex / MutexLock / CondVar wrappers so Clang's
#      thread-safety analysis sees every lock operation — one raw
#      std::lock_guard is an invisible critical section.
#   2. std::thread::detach() is banned everywhere: a detached thread
#      outlives scope tracking and is unjoinable at shutdown.
#   3. sleep_for in tests/ is banned as a synchronization device —
#      sleeping until "the other thread is probably done" is the classic
#      flaky test. Real waiting uses CondVar / Drain / queue pops.
#      Deliberate pacing sleeps (throttling a consumer, not ordering an
#      outcome) carry `sync-lint: allow(sleep)` in a comment on the same
#      line with a reason. bench/ is exempt from all three rules
#      (benchmarks legitimately pace and pin threads).
#
# Run from anywhere; CI runs it next to check_docs_links.sh.
set -u
cd "$(dirname "$0")/.."

status=0

# Strip // and /* */ comments well enough for a lint (string literals
# containing the banned spellings do not occur in this codebase).
strip_comments() {
  sed -e 's://.*$::' -e 's:/\*.*\*/::g' "$1"
}

# Rule 1+2 scope: all first-party C++ outside bench/.
cpp_files="$(find src tools tests examples \
             \( -name '*.cc' -o -name '*.cpp' -o -name '*.h' \) | sort)"

for f in $cpp_files; do
  [ "$f" = "src/rl0/util/sync.h" ] && continue
  hits="$(strip_comments "$f" \
          | grep -nE 'std::(mutex|lock_guard|scoped_lock|condition_variable|unique_lock)\b' \
          || true)"
  if [ -n "$hits" ]; then
    echo "RAW SYNC PRIMITIVE (use rl0/util/sync.h): $f" >&2
    echo "$hits" | sed 's/^/    /' >&2
    status=1
  fi
done

for f in $cpp_files; do
  hits="$(strip_comments "$f" | grep -nE '\.detach\(\)' || true)"
  if [ -n "$hits" ]; then
    echo "THREAD DETACH (threads must be joined): $f" >&2
    echo "$hits" | sed 's/^/    /' >&2
    status=1
  fi
done

# Rule 3: sleep_for in tests/, minus allow-marked lines.
for f in $(find tests \( -name '*.cc' -o -name '*.h' \) | sort); do
  hits="$(grep -nE 'sleep_for' "$f" | grep -v 'sync-lint: allow(sleep)' \
          || true)"
  if [ -n "$hits" ]; then
    echo "SLEEP-BASED SYNC IN TEST (wait on a CondVar/queue, or mark" >&2
    echo "a deliberate pacing sleep with 'sync-lint: allow(sleep)'): $f" >&2
    echo "$hits" | sed 's/^/    /' >&2
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "sync lint FAILED" >&2
else
  echo "sync lint OK"
fi
exit "$status"
