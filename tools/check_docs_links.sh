#!/usr/bin/env bash
# Docs cross-reference check, two passes:
#
#   1. Markdown links: fails if any relative [text](target) link in the
#      root-level markdown files (README.md, ROADMAP.md, ...) or
#      docs/*.md points at a file that does not exist.
#   2. Source-path references: fails if a backtick-quoted repo path in
#      docs/*.md or README.md (`src/...`, `tests/...`, `tools/...`,
#      `bench/...`, `docs/...`, `examples/...`, or a bare
#      `core/...`-style path under src/rl0/) names a file that does not
#      exist — stale references are how architecture docs rot.
#
# Run from anywhere; CI runs it as its own step (see
# .github/workflows/ci.yml).
set -u
cd "$(dirname "$0")/.."

status=0
for f in *.md docs/*.md; do
  [ -e "$f" ] || continue
  dir="$(dirname "$f")"
  # Extract the (target) half of every [text](target) link.
  while IFS= read -r target; do
    target="${target%%#*}"          # drop in-page anchors
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;  # external links
    esac
    if [ ! -e "$dir/$target" ]; then
      echo "BROKEN LINK: $f -> $target" >&2
      status=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//')
done

# Pass 2: backtick-quoted source paths in the docs. A reference resolves
# if it exists relative to the repo root or under src/rl0/ (the docs
# abbreviate `core/foo.h` for `src/rl0/core/foo.h`). `a/b.{h,cc}` pairs
# are expanded. Only multi-segment paths with a file extension are
# checked — prose like `--window` or `jq` never matches.
for f in README.md docs/*.md; do
  [ -e "$f" ] || continue
  while IFS= read -r ref; do
    [ -z "$ref" ] && continue
    # Expand `path.{h,cc}` into both members.
    expanded="$ref"
    if printf '%s' "$ref" | grep -qE '\.\{[a-z,]+\}$'; then
      base="${ref%%.\{*}"
      exts="$(printf '%s' "$ref" | sed -e 's/^.*\.{//' -e 's/}$//' \
              | tr ',' ' ')"
      expanded=""
      for e in $exts; do expanded="$expanded $base.$e"; done
    fi
    for path in $expanded; do
      if [ ! -e "$path" ] && [ ! -e "src/rl0/$path" ]; then
        echo "STALE SOURCE REFERENCE: $f -> $path" >&2
        status=1
      fi
    done
  done < <(grep -oE '`[A-Za-z0-9_./{},-]+`' "$f" | tr -d '`' \
           | grep -E '^[A-Za-z0-9_-]+(/[A-Za-z0-9_.{},-]+)+$' \
           | grep -E '\.(h|cc|cpp|md|sh|txt|yml|json)(\{[a-z,]+\})?$|\.\{[a-z,]+\}$' \
           | sort -u)
done

if [ "$status" -ne 0 ]; then
  echo "docs link check FAILED" >&2
else
  echo "docs link check OK"
fi
exit "$status"
