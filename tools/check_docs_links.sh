#!/usr/bin/env bash
# Docs cross-link check: fails if any relative markdown link in the
# root-level markdown files (README.md, ROADMAP.md, ...) or docs/*.md
# points at a file that does not exist. Run from anywhere; CI runs it as
# its own step (see .github/workflows/ci.yml).
set -u
cd "$(dirname "$0")/.."

status=0
for f in *.md docs/*.md; do
  [ -e "$f" ] || continue
  dir="$(dirname "$f")"
  # Extract the (target) half of every [text](target) link.
  while IFS= read -r target; do
    target="${target%%#*}"          # drop in-page anchors
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;  # external links
    esac
    if [ ! -e "$dir/$target" ]; then
      echo "BROKEN LINK: $f -> $target" >&2
      status=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//')
done

if [ "$status" -ne 0 ]; then
  echo "docs link check FAILED" >&2
else
  echo "docs link check OK"
fi
exit "$status"
