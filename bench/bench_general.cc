// Ablation (Section 3 / Theorem 3.1): general, non-well-separated data.
// On chains of overlapping clusters the minimum-cardinality partition is
// ambiguous; the theorem promises Pr[sample ∈ Ball(p, α)] = Θ(1/F0) for
// every point p. We measure the min/max ball-hit probability across all
// points, normalized by the greedy-partition group count.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness.h"
#include "rl0/baseline/exact_partition.h"

int main() {
  using namespace rl0;
  using namespace rl0::bench;
  std::printf("== Ablation: general datasets (Theorem 3.1) ==\n");
  std::printf("%8s %8s %8s %14s %14s %10s\n", "points", "n_gdy", "runs",
              "min ball-prob", "max ball-prob", "target");
  for (size_t n : {40u, 80u, 160u}) {
    const BaseDataset data = OverlappingChains(n, 2, 1.0, 13 + n);
    const size_t n_gdy = GreedyPartition(data.points, 1.0).num_groups;
    const uint64_t runs = EnvRuns(4000);
    std::vector<uint64_t> hits(n, 0);
    for (uint64_t run = 0; run < runs; ++run) {
      SamplerOptions opts;
      opts.dim = 2;
      opts.alpha = 1.0;
      opts.seed = 1000 * n + run;
      opts.side_mode = GridSideMode::kConstantDim;  // Section 3 regime
      opts.expected_stream_length = n;
      auto sampler = RobustL0SamplerIW::Create(opts).value();
      for (const Point& p : data.points) sampler.Insert(p);
      Xoshiro256pp rng(SplitMix64(77 * n + run));
      const auto sample = sampler.Sample(&rng);
      if (!sample.has_value()) continue;
      for (size_t i = 0; i < n; ++i) {
        if (WithinDistance(data.points[i], sample->point, 1.0)) ++hits[i];
      }
    }
    const double lo = static_cast<double>(
                          *std::min_element(hits.begin(), hits.end())) /
                      static_cast<double>(runs);
    const double hi = static_cast<double>(
                          *std::max_element(hits.begin(), hits.end())) /
                      static_cast<double>(runs);
    std::printf("%8zu %8zu %8llu %14.4f %14.4f %10.4f\n", n, n_gdy,
                static_cast<unsigned long long>(runs), lo, hi,
                1.0 / static_cast<double>(n_gdy));
  }
  std::printf(
      "\nexpected shape: min and max ball-hit probabilities bracket the\n"
      "1/n_gdy target within a constant factor (Theorem 3.1's Theta(1/n)\n"
      "— the max can exceed 1/n because a ball may intersect several\n"
      "greedy groups).\n");
  return 0;
}
