// Ingestion-throughput benchmark for the arena/flat-index refactor.
//
// Measures points/sec over paper-style noisy streams across dims
// {2, 5, 20} for three ingestion paths:
//
//   legacy  — LegacyL0SamplerIW: the pre-refactor map-based layout
//             (unordered_map + unordered_multimap, heap Point per rep),
//             point-at-a-time;
//   arena   — RobustL0SamplerIW::Insert: the RepTable/PointStore layout,
//             point-at-a-time;
//   batch   — RobustL0SamplerIW::InsertBatch: same layout, contiguous
//             chunk ingestion (the preferred single-thread path);
//   pool    — ShardedSamplerPool (4 shards) fed in 4096-point chunks
//             through the persistent IngestPool pipeline (the preferred
//             multi-shard path; see bench_pipeline for the sweep against
//             per-call spawn/join);
//   swpool  — ShardedSwSamplerPool (4 lanes, window 8192) fed the same
//             chunks: the sliding-window mode of the pipeline (see
//             bench_window for the flat-vs-legacy window index sweep).
//
// All three make bit-identical sampling decisions (pinned by
// tests/ingest_determinism_test.cc), so the comparison is pure layout.
//
// Output: a human-readable table on stderr and a JSON document on stdout
// (pipe to BENCH_ingest.json to track the trajectory across PRs):
//   RL0_REPEATS  overrides the per-path repeat count (default 3).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "rl0/baseline/legacy_iw_sampler.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/geom/distance_kernels.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace {

using rl0::LegacyL0SamplerIW;
using rl0::NoisyDataset;
using rl0::ShardedSamplerPool;
using rl0::ShardedSwSamplerPool;
using rl0::Point;
using rl0::RobustL0SamplerIW;
using rl0::SamplerOptions;

struct PathResult {
  double points_per_sec = 0.0;
  size_t accept_size = 0;  // keeps the work observable
};

size_t ObservableState(const LegacyL0SamplerIW& s) { return s.accept_size(); }
size_t ObservableState(const RobustL0SamplerIW& s) { return s.accept_size(); }
size_t ObservableState(const ShardedSamplerPool& s) { return s.SpaceWords(); }
size_t ObservableState(const ShardedSwSamplerPool& s) { return s.SpaceWords(); }

template <typename MakeSampler, typename Feed>
double TimeOnce(const NoisyDataset& data, int rep, MakeSampler make_sampler,
                Feed feed) {
  auto sampler = make_sampler(rep);
  const auto start = std::chrono::steady_clock::now();
  feed(&sampler);
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  // Keep the final state observable so the loop cannot be optimized away.
  if (ObservableState(sampler) == data.size()) {
    std::fprintf(stderr, "(full accept)\n");  // keep stdout JSON-clean
  }
  return static_cast<double>(data.size()) / seconds;
}

NoisyDataset IngestStream(size_t dim, uint64_t seed) {
  const rl0::BaseDataset base = rl0::RandomUniform(
      1000, dim, seed, "Ingest" + std::to_string(dim));
  rl0::NearDupOptions nd;
  nd.max_dups = 100;  // paper-scale duplication: ~50k-point streams
  nd.seed = seed + 1;
  return rl0::MakeNearDuplicates(base, nd);
}

}  // namespace

int main() {
  const int repeats = rl0::bench::EnvRepeats(3);
  const uint64_t seed = 20180618;  // the paper's PODS year + month + day
  const unsigned cores = std::thread::hardware_concurrency();

  // Machine facts ride with the numbers so BENCH_ingest.json
  // trajectories are comparable across machines: the distance-kernel
  // dispatch path (avx2 vs scalar) changes single-thread throughput, the
  // core count bounds what the pool rows can show (see docs/BENCHMARKS.md).
  std::printf("{\n  \"bench\": \"ingest\",\n  \"repeats\": %d,\n"
              "  \"dispatch\": \"%s\",\n  \"cores\": %u,\n"
              "  \"workloads\": [\n",
              repeats, rl0::DistanceKernelDispatch(), cores);
  std::fprintf(stderr,
               "%-10s %8s %9s | %12s %12s %12s %12s %12s | %8s %8s %8s\n",
               "workload", "dim", "points", "legacy p/s", "arena p/s",
               "batch p/s", "pool p/s", "swpool p/s", "arena x", "batch x",
               "pool x");

  bool first = true;
  for (size_t dim : {2, 5, 20}) {
    const NoisyDataset data = IngestStream(dim, 77 + dim);
    const SamplerOptions opts = rl0::bench::PaperSamplerOptions(data, seed);

    // Interleave the three paths across repeats (best-of): a CPU hiccup
    // hits one repeat of one path, not a whole path's measurement.
    PathResult legacy, arena, batch, pool, swpool;
    for (int rep = 0; rep < repeats; ++rep) {
      legacy.points_per_sec = std::max(
          legacy.points_per_sec,
          TimeOnce(
              data, rep,
              [&](int r) {
                SamplerOptions o = opts;
                o.seed = seed + r;
                return LegacyL0SamplerIW::Create(o).value();
              },
              [&](LegacyL0SamplerIW* s) {
                for (const Point& p : data.points) s->Insert(p);
              }));
      arena.points_per_sec = std::max(
          arena.points_per_sec,
          TimeOnce(
              data, rep,
              [&](int r) {
                SamplerOptions o = opts;
                o.seed = seed + r;
                return RobustL0SamplerIW::Create(o).value();
              },
              [&](RobustL0SamplerIW* s) {
                for (const Point& p : data.points) s->Insert(p);
              }));
      batch.points_per_sec = std::max(
          batch.points_per_sec,
          TimeOnce(
              data, rep,
              [&](int r) {
                SamplerOptions o = opts;
                o.seed = seed + r;
                return RobustL0SamplerIW::Create(o).value();
              },
              [&](RobustL0SamplerIW* s) { s->InsertBatch(data.points); }));
      pool.points_per_sec = std::max(
          pool.points_per_sec,
          TimeOnce(
              data, rep,
              [&](int r) {
                SamplerOptions o = opts;
                o.seed = seed + r;
                return ShardedSamplerPool::Create(o, 4).value();
              },
              [&](ShardedSamplerPool* s) {
                const rl0::Span<const rl0::Point> all(data.points);
                for (size_t off = 0; off < all.size(); off += 4096) {
                  s->FeedBorrowed(all.subspan(off, 4096));
                }
                s->Drain();
              }));
      swpool.points_per_sec = std::max(
          swpool.points_per_sec,
          TimeOnce(
              data, rep,
              [&](int r) {
                SamplerOptions o = opts;
                o.seed = seed + r;
                return ShardedSwSamplerPool::Create(o, 8192, 4).value();
              },
              [&](ShardedSwSamplerPool* s) {
                const rl0::Span<const rl0::Point> all(data.points);
                for (size_t off = 0; off < all.size(); off += 4096) {
                  s->FeedBorrowed(all.subspan(off, 4096));
                }
                s->Drain();
              }));
    }

    const double arena_x = arena.points_per_sec / legacy.points_per_sec;
    const double batch_x = batch.points_per_sec / legacy.points_per_sec;
    const double pool_x = pool.points_per_sec / legacy.points_per_sec;
    std::fprintf(stderr,
                 "%-10s %8zu %9zu | %12.0f %12.0f %12.0f %12.0f %12.0f | "
                 "%7.2fx %7.2fx %7.2fx\n",
                 data.name.c_str(), dim, data.size(), legacy.points_per_sec,
                 arena.points_per_sec, batch.points_per_sec,
                 pool.points_per_sec, swpool.points_per_sec, arena_x,
                 batch_x, pool_x);
    std::printf(
        "%s    {\"workload\": \"%s\", \"dim\": %zu, \"points\": %zu,\n"
        "     \"legacy_points_per_sec\": %.0f,\n"
        "     \"arena_points_per_sec\": %.0f,\n"
        "     \"batch_points_per_sec\": %.0f,\n"
        "     \"pool_points_per_sec\": %.0f,\n"
        "     \"sw_pool_points_per_sec\": %.0f,\n"
        "     \"arena_speedup\": %.3f, \"batch_speedup\": %.3f, "
        "\"pool_speedup\": %.3f%s}",
        first ? "" : ",\n", data.name.c_str(), dim, data.size(),
        legacy.points_per_sec, arena.points_per_sec, batch.points_per_sec,
        pool.points_per_sec, swpool.points_per_sec, arena_x, batch_x,
        pool_x,
        // One core starves the pool lanes: pool_speedup then measures
        // pipeline overhead, not parallelism, and comparison summaries
        // must skip the row (see docs/BENCHMARKS.md).
        cores == 1 ? ", \"overhead_only\": true" : "");
    first = false;
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
