// Sliding-window ingestion throughput: flat group index vs the legacy
// node-based index, and windowed pipeline scaling.
//
// Three ingestion paths over a paper-style ~50k-point noisy stream with
// a window of 8192 positions:
//
//   legacy — LegacySwSampler: the pre-refactor hierarchy (unordered_map
//            groups, unordered_multimap cell index, std::map expiry
//            order; split promotion through materialized GroupRecords),
//            point-at-a-time;
//   flat   — RobustL0SamplerSW: the SwGroupTable layout (flat slot
//            columns, open-addressing cell index, intrusive stamp list,
//            arena-internal PromoteInto), point-at-a-time;
//   pool S — ShardedSwSamplerPool with S ∈ {1, 2, 4, 8} persistent lanes
//            fed 2048-point borrowed chunks + one final Drain.
//
// legacy and flat make bit-identical sampling decisions (pinned by
// tests/sw_pipeline_determinism_test.cc), so that column pair is pure
// layout; the pool rows show windowed pipeline scaling.
//
// Output: a human-readable table on stderr and ONE LINE of JSON on
// stdout. Append per PR:   ./build/bench_window >> BENCH_window.json
// (one JSON document per line, newest last). RL0_REPEATS overrides the
// per-path repeat count (default 3, best-of).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "rl0/baseline/legacy_sw_sampler.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace {

using rl0::LegacySwSampler;
using rl0::NoisyDataset;
using rl0::Point;
using rl0::RobustL0SamplerSW;
using rl0::SamplerOptions;
using rl0::ShardedSwSamplerPool;
using rl0::Span;

constexpr int64_t kWindow = 8192;

NoisyDataset WindowStream(size_t dim, uint64_t seed) {
  const rl0::BaseDataset base = rl0::RandomUniform(
      1000, dim, seed, "Window" + std::to_string(dim));
  rl0::NearDupOptions nd;
  nd.max_dups = 100;  // paper-scale duplication: ~50k-point stream
  nd.seed = seed + 1;
  return rl0::MakeNearDuplicates(base, nd);
}

template <typename Run>
double BestOf(int repeats, size_t points, Run run) {
  double best = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const size_t observable = run(rep);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (observable == 0) {
      std::fprintf(stderr, "(empty sampler)\n");  // keep stdout clean
    }
    best = std::max(best, static_cast<double>(points) / seconds);
  }
  return best;
}

}  // namespace

int main() {
  const int repeats = rl0::bench::EnvRepeats(3);
  const uint64_t seed = 20180618;

  // Pool rows only show lane parallelism when cores are available; the
  // core count is recorded so the JSONL trajectory stays interpretable
  // across machines (a 1-core container measures pipeline overhead).
  std::printf("{\"bench\": \"window\", \"repeats\": %d, \"window\": %lld, "
              "\"cores\": %u, \"rows\": [",
              repeats, static_cast<long long>(kWindow),
              std::thread::hardware_concurrency());
  std::fprintf(stderr,
               "%-10s %4s %8s | %12s %12s %8s | %10s %10s %10s %10s\n",
               "workload", "dim", "points", "legacy p/s", "flat p/s",
               "flat x", "pool1 p/s", "pool2 p/s", "pool4 p/s",
               "pool8 p/s");

  bool first = true;
  for (size_t dim : {2, 5}) {
    const NoisyDataset data = WindowStream(dim, 77 + dim);
    const SamplerOptions opts = rl0::bench::PaperSamplerOptions(data, seed);

    const double legacy = BestOf(repeats, data.size(), [&](int rep) {
      SamplerOptions o = opts;
      o.seed = seed + rep;
      auto sampler = LegacySwSampler::Create(o, kWindow).value();
      for (const Point& p : data.points) sampler.Insert(p);
      return sampler.SpaceWords();
    });
    const double flat = BestOf(repeats, data.size(), [&](int rep) {
      SamplerOptions o = opts;
      o.seed = seed + rep;
      auto sampler = RobustL0SamplerSW::Create(o, kWindow).value();
      for (const Point& p : data.points) sampler.Insert(p);
      return sampler.SpaceWords();
    });
    double pool_rate[4] = {0, 0, 0, 0};
    const size_t lane_counts[4] = {1, 2, 4, 8};
    for (int i = 0; i < 4; ++i) {
      pool_rate[i] = BestOf(repeats, data.size(), [&](int rep) {
        SamplerOptions o = opts;
        o.seed = seed + rep;
        auto pool =
            ShardedSwSamplerPool::Create(o, kWindow, lane_counts[i]).value();
        const Span<const Point> all(data.points);
        for (size_t off = 0; off < all.size(); off += 2048) {
          pool.FeedBorrowed(all.subspan(off, 2048));
        }
        pool.Drain();
        return pool.SpaceWords();
      });
    }

    const double flat_x = flat / legacy;
    std::fprintf(stderr,
                 "%-10s %4zu %8zu | %12.0f %12.0f %7.2fx | %10.0f %10.0f "
                 "%10.0f %10.0f\n",
                 data.name.c_str(), dim, data.size(), legacy, flat, flat_x,
                 pool_rate[0], pool_rate[1], pool_rate[2], pool_rate[3]);
    std::printf(
        "%s{\"workload\": \"%s\", \"dim\": %zu, \"points\": %zu, "
        "\"legacy_points_per_sec\": %.0f, \"flat_points_per_sec\": %.0f, "
        "\"flat_speedup\": %.3f, \"pool1_points_per_sec\": %.0f, "
        "\"pool2_points_per_sec\": %.0f, \"pool4_points_per_sec\": %.0f, "
        "\"pool8_points_per_sec\": %.0f}",
        first ? "" : ", ", data.name.c_str(), dim, data.size(), legacy, flat,
        flat_x, pool_rate[0], pool_rate[1], pool_rate[2], pool_rate[3]);
    first = false;
  }
  std::printf("]}\n");
  return 0;
}
