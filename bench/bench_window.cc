// Sliding-window ingestion throughput: flat group index vs the legacy
// node-based index, windowed pipeline scaling, and the time-based
// (explicit-stamp) paths.
//
// Sequence-based paths over a paper-style ~50k-point noisy stream with
// a window of 8192 positions:
//
//   legacy — LegacySwSampler: the pre-refactor hierarchy (unordered_map
//            groups, unordered_multimap cell index, std::map expiry
//            order; split promotion through materialized GroupRecords),
//            point-at-a-time;
//   flat   — RobustL0SamplerSW: the SwGroupTable layout (flat slot
//            columns, open-addressing cell index, intrusive stamp list,
//            arena-internal PromoteInto), point-at-a-time;
//   pool S — ShardedSwSamplerPool with S ∈ {1, 2, 4, 8} persistent lanes
//            fed 2048-point borrowed chunks + one final Drain;
//   adapt4 — the 4-lane pool fed through FeedAdaptive (queue-depth-driven
//            chunk sizing, core/chunk_policy.h) instead of fixed chunks.
//
// Time-based paths over the same stream carrying explicit stamps
// (inter-arrival gaps uniform in {1..3}; window scaled by the mean gap
// so both models cover a comparable point population):
//
//   tflat   — RobustL0SamplerSW::Insert(p, stamp), point-at-a-time;
//   tpool S — the pool fed 2048-point borrowed stamped chunks
//             (FeedBorrowedStamped), S ∈ {1, 4}.
//
// legacy and flat make bit-identical sampling decisions (pinned by
// tests/sw_pipeline_determinism_test.cc), so that column pair is pure
// layout; the pool rows show windowed pipeline scaling, and the tpool
// rows price the stamp arrays riding the chunks.
//
// Output: a human-readable table on stderr and ONE LINE of JSON on
// stdout. Append per PR:   ./build/bench_window >> BENCH_window.json
// (one JSON document per line, newest last). RL0_REPEATS overrides the
// per-path repeat count (default 3, best-of).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "rl0/baseline/legacy_sw_sampler.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"
#include "rl0/stream/window_stream.h"

namespace {

using rl0::LegacySwSampler;
using rl0::NoisyDataset;
using rl0::Point;
using rl0::RobustL0SamplerSW;
using rl0::SamplerOptions;
using rl0::ShardedSwSamplerPool;
using rl0::Span;

constexpr int64_t kWindow = 8192;

NoisyDataset WindowStream(size_t dim, uint64_t seed) {
  const rl0::BaseDataset base = rl0::RandomUniform(
      1000, dim, seed, "Window" + std::to_string(dim));
  rl0::NearDupOptions nd;
  nd.max_dups = 100;  // paper-scale duplication: ~50k-point stream
  nd.seed = seed + 1;
  return rl0::MakeNearDuplicates(base, nd);
}

template <typename Run>
double BestOf(int repeats, size_t points, Run run) {
  double best = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const size_t observable = run(rep);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (observable == 0) {
      std::fprintf(stderr, "(empty sampler)\n");  // keep stdout clean
    }
    best = std::max(best, static_cast<double>(points) / seconds);
  }
  return best;
}

}  // namespace

int main() {
  const int repeats = rl0::bench::EnvRepeats(3);
  const uint64_t seed = 20180618;

  // Pool rows only show lane parallelism when cores are available; the
  // core count is recorded so the JSONL trajectory stays interpretable
  // across machines (a 1-core container measures pipeline overhead).
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("{\"bench\": \"window\", \"repeats\": %d, \"window\": %lld, "
              "\"cores\": %u, \"rows\": [",
              repeats, static_cast<long long>(kWindow), cores);
  std::fprintf(stderr,
               "%-10s %4s %8s | %12s %12s %8s | %10s %10s %10s %10s %10s "
               "| %10s %10s %10s\n",
               "workload", "dim", "points", "legacy p/s", "flat p/s",
               "flat x", "pool1 p/s", "pool2 p/s", "pool4 p/s",
               "pool8 p/s", "adapt4 p/s", "tflat p/s", "tpool1 p/s",
               "tpool4 p/s");

  bool first = true;
  for (size_t dim : {2, 5}) {
    const NoisyDataset data = WindowStream(dim, 77 + dim);
    const SamplerOptions opts = rl0::bench::PaperSamplerOptions(data, seed);

    const double legacy = BestOf(repeats, data.size(), [&](int rep) {
      SamplerOptions o = opts;
      o.seed = seed + rep;
      auto sampler = LegacySwSampler::Create(o, kWindow).value();
      for (const Point& p : data.points) sampler.Insert(p);
      return sampler.SpaceWords();
    });
    const double flat = BestOf(repeats, data.size(), [&](int rep) {
      SamplerOptions o = opts;
      o.seed = seed + rep;
      auto sampler = RobustL0SamplerSW::Create(o, kWindow).value();
      for (const Point& p : data.points) sampler.Insert(p);
      return sampler.SpaceWords();
    });
    double pool_rate[4] = {0, 0, 0, 0};
    const size_t lane_counts[4] = {1, 2, 4, 8};
    for (int i = 0; i < 4; ++i) {
      pool_rate[i] = BestOf(repeats, data.size(), [&](int rep) {
        SamplerOptions o = opts;
        o.seed = seed + rep;
        auto pool =
            ShardedSwSamplerPool::Create(o, kWindow, lane_counts[i]).value();
        const Span<const Point> all(data.points);
        for (size_t off = 0; off < all.size(); off += 2048) {
          pool.FeedBorrowed(all.subspan(off, 2048));
        }
        pool.Drain();
        return pool.SpaceWords();
      });
    }
    // Adaptive chunk sizing on the 4-lane pool: same stream, chunk sizes
    // driven by queue depth instead of fixed 2048. FeedAdaptive copies
    // each chunk, so this row also carries the copy the fixed rows skip.
    const double adapt4 = BestOf(repeats, data.size(), [&](int rep) {
      SamplerOptions o = opts;
      o.seed = seed + rep;
      auto pool = ShardedSwSamplerPool::Create(o, kWindow, 4).value();
      pool.FeedAdaptive(Span<const Point>(data.points));
      pool.Drain();
      return pool.SpaceWords();
    });

    // Time-based rows: explicit stamps with mean gap 2 (uniform {1..3});
    // the window spans the same expected point population as kWindow.
    const std::vector<rl0::StampedPoint> stamped =
        rl0::TimeStampedBursty(data, 3, 0, 0, seed + dim);
    std::vector<Point> tpoints;
    std::vector<int64_t> tstamps;
    rl0::SplitStamped(stamped, &tpoints, &tstamps);
    const int64_t time_window = kWindow * 2;
    const double tflat = BestOf(repeats, data.size(), [&](int rep) {
      SamplerOptions o = opts;
      o.seed = seed + rep;
      auto sampler = RobustL0SamplerSW::Create(o, time_window).value();
      for (size_t i = 0; i < tpoints.size(); ++i) {
        sampler.Insert(tpoints[i], tstamps[i]);
      }
      return sampler.SpaceWords();
    });
    double tpool_rate[2] = {0, 0};
    const size_t tlane_counts[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
      tpool_rate[i] = BestOf(repeats, data.size(), [&](int rep) {
        SamplerOptions o = opts;
        o.seed = seed + rep;
        auto pool =
            ShardedSwSamplerPool::Create(o, time_window, tlane_counts[i])
                .value();
        const Span<const Point> all(tpoints);
        const Span<const int64_t> stamps(tstamps);
        for (size_t off = 0; off < all.size(); off += 2048) {
          pool.FeedBorrowedStamped(all.subspan(off, 2048),
                                   stamps.subspan(off, 2048));
        }
        pool.Drain();
        return pool.SpaceWords();
      });
    }

    const double flat_x = flat / legacy;
    std::fprintf(stderr,
                 "%-10s %4zu %8zu | %12.0f %12.0f %7.2fx | %10.0f %10.0f "
                 "%10.0f %10.0f %10.0f | %10.0f %10.0f %10.0f\n",
                 data.name.c_str(), dim, data.size(), legacy, flat, flat_x,
                 pool_rate[0], pool_rate[1], pool_rate[2], pool_rate[3],
                 adapt4, tflat, tpool_rate[0], tpool_rate[1]);
    std::printf(
        "%s{\"workload\": \"%s\", \"dim\": %zu, \"points\": %zu, "
        "\"legacy_points_per_sec\": %.0f, \"flat_points_per_sec\": %.0f, "
        "\"flat_speedup\": %.3f, \"pool1_points_per_sec\": %.0f, "
        "\"pool2_points_per_sec\": %.0f, \"pool4_points_per_sec\": %.0f, "
        "\"pool8_points_per_sec\": %.0f, "
        "\"adaptive4_points_per_sec\": %.0f, "
        "\"time_flat_points_per_sec\": %.0f, "
        "\"time_pool1_points_per_sec\": %.0f, "
        "\"time_pool4_points_per_sec\": %.0f%s}",
        first ? "" : ", ", data.name.c_str(), dim, data.size(), legacy, flat,
        flat_x, pool_rate[0], pool_rate[1], pool_rate[2], pool_rate[3],
        adapt4, tflat, tpool_rate[0], tpool_rate[1],
        // Marks the pool columns only: flat_speedup is serial-vs-serial
        // and stays comparable on any core count.
        cores == 1 ? ", \"overhead_only\": true" : "");
    first = false;
  }
  std::printf("]}\n");
  return 0;
}
