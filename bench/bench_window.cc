// Sliding-window ingestion throughput: flat group index vs the legacy
// node-based index, windowed pipeline scaling, and the time-based
// (explicit-stamp) paths.
//
// Sequence-based paths over a paper-style ~50k-point noisy stream with
// a window of 8192 positions:
//
//   legacy — LegacySwSampler: the pre-refactor hierarchy (unordered_map
//            groups, unordered_multimap cell index, std::map expiry
//            order; split promotion through materialized GroupRecords),
//            point-at-a-time;
//   flat   — RobustL0SamplerSW: the SwGroupTable layout (flat slot
//            columns, open-addressing cell index, intrusive stamp list,
//            arena-internal PromoteInto), point-at-a-time;
//   pool S — ShardedSwSamplerPool with S ∈ {1, 2, 4, 8} persistent lanes
//            fed 2048-point borrowed chunks + one final Drain;
//   adapt4 — the 4-lane pool fed through FeedAdaptive (queue-depth-driven
//            chunk sizing, core/chunk_policy.h) instead of fixed chunks.
//
// Time-based paths over the same stream carrying explicit stamps
// (inter-arrival gaps uniform in {1..3}; window scaled by the mean gap
// so both models cover a comparable point population):
//
//   tflat   — RobustL0SamplerSW::Insert(p, stamp), point-at-a-time;
//   tpool S — the pool fed 2048-point borrowed stamped chunks
//             (FeedBorrowedStamped), S ∈ {1, 4}.
//
// Bounded-lateness scenario rows (core/reorder_buffer.h) price the
// reorder front-end: the same stamped stream disordered within a
// lateness bound, fed through InsertStampedLate / FeedStampedLate,
// against the canonically sorted stream fed strict (sorted p/s — the
// work the reorder stage saves the caller):
//
//   late-jitter — uniform jitter disorder within bound 128 (clock skew
//                 across sources), serial;
//   late-skew   — heavy-tailed disorder within bound 1024 (rare
//                 stragglers near the bound), serial;
//   late-bursty — a bursty stream (whole-window stamp leaps) disordered
//                 within bound 128, 4-lane pool with watermark
//                 broadcasts.
//
// legacy and flat make bit-identical sampling decisions (pinned by
// tests/sw_pipeline_determinism_test.cc), so that column pair is pure
// layout; the pool rows show windowed pipeline scaling, and the tpool
// rows price the stamp arrays riding the chunks.
//
// Output: a human-readable table on stderr and ONE LINE of JSON on
// stdout. Append per PR:   ./build/bench_window >> BENCH_window.json
// (one JSON document per line, newest last). RL0_REPEATS overrides the
// per-path repeat count (default 3, best-of).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "rl0/baseline/legacy_sw_sampler.h"
#include "rl0/core/reorder_buffer.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"
#include "rl0/stream/window_stream.h"

namespace {

using rl0::LegacySwSampler;
using rl0::NoisyDataset;
using rl0::Point;
using rl0::RobustL0SamplerSW;
using rl0::SamplerOptions;
using rl0::ShardedSwSamplerPool;
using rl0::Span;

constexpr int64_t kWindow = 8192;

NoisyDataset WindowStream(size_t dim, uint64_t seed) {
  const rl0::BaseDataset base = rl0::RandomUniform(
      1000, dim, seed, "Window" + std::to_string(dim));
  rl0::NearDupOptions nd;
  nd.max_dups = 100;  // paper-scale duplication: ~50k-point stream
  nd.seed = seed + 1;
  return rl0::MakeNearDuplicates(base, nd);
}

template <typename Run>
double BestOf(int repeats, size_t points, Run run) {
  double best = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const size_t observable = run(rep);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (observable == 0) {
      std::fprintf(stderr, "(empty sampler)\n");  // keep stdout clean
    }
    best = std::max(best, static_cast<double>(points) / seconds);
  }
  return best;
}

}  // namespace

int main() {
  const int repeats = rl0::bench::EnvRepeats(3);
  const uint64_t seed = 20180618;

  // Pool rows only show lane parallelism when cores are available; the
  // core count is recorded so the JSONL trajectory stays interpretable
  // across machines (a 1-core container measures pipeline overhead).
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("{\"bench\": \"window\", \"repeats\": %d, \"window\": %lld, "
              "\"cores\": %u, \"rows\": [",
              repeats, static_cast<long long>(kWindow), cores);
  std::fprintf(stderr,
               "%-10s %4s %8s | %12s %12s %8s | %10s %10s %10s %10s %10s "
               "| %10s %10s %10s\n",
               "workload", "dim", "points", "legacy p/s", "flat p/s",
               "flat x", "pool1 p/s", "pool2 p/s", "pool4 p/s",
               "pool8 p/s", "adapt4 p/s", "tflat p/s", "tpool1 p/s",
               "tpool4 p/s");

  bool first = true;
  for (size_t dim : {2, 5}) {
    const NoisyDataset data = WindowStream(dim, 77 + dim);
    const SamplerOptions opts = rl0::bench::PaperSamplerOptions(data, seed);

    const double legacy = BestOf(repeats, data.size(), [&](int rep) {
      SamplerOptions o = opts;
      o.seed = seed + rep;
      auto sampler = LegacySwSampler::Create(o, kWindow).value();
      for (const Point& p : data.points) sampler.Insert(p);
      return sampler.SpaceWords();
    });
    const double flat = BestOf(repeats, data.size(), [&](int rep) {
      SamplerOptions o = opts;
      o.seed = seed + rep;
      auto sampler = RobustL0SamplerSW::Create(o, kWindow).value();
      for (const Point& p : data.points) sampler.Insert(p);
      return sampler.SpaceWords();
    });
    double pool_rate[4] = {0, 0, 0, 0};
    const size_t lane_counts[4] = {1, 2, 4, 8};
    for (int i = 0; i < 4; ++i) {
      pool_rate[i] = BestOf(repeats, data.size(), [&](int rep) {
        SamplerOptions o = opts;
        o.seed = seed + rep;
        auto pool =
            ShardedSwSamplerPool::Create(o, kWindow, lane_counts[i]).value();
        const Span<const Point> all(data.points);
        for (size_t off = 0; off < all.size(); off += 2048) {
          pool.FeedBorrowed(all.subspan(off, 2048));
        }
        pool.Drain();
        return pool.SpaceWords();
      });
    }
    // Adaptive chunk sizing on the 4-lane pool: same stream, chunk sizes
    // driven by queue depth instead of fixed 2048. FeedAdaptive copies
    // each chunk, so this row also carries the copy the fixed rows skip.
    const double adapt4 = BestOf(repeats, data.size(), [&](int rep) {
      SamplerOptions o = opts;
      o.seed = seed + rep;
      auto pool = ShardedSwSamplerPool::Create(o, kWindow, 4).value();
      pool.FeedAdaptive(Span<const Point>(data.points));
      pool.Drain();
      return pool.SpaceWords();
    });

    // Time-based rows: explicit stamps with mean gap 2 (uniform {1..3});
    // the window spans the same expected point population as kWindow.
    const std::vector<rl0::StampedPoint> stamped =
        rl0::TimeStampedBursty(data, 3, 0, 0, seed + dim);
    std::vector<Point> tpoints;
    std::vector<int64_t> tstamps;
    rl0::SplitStamped(stamped, &tpoints, &tstamps);
    const int64_t time_window = kWindow * 2;
    const double tflat = BestOf(repeats, data.size(), [&](int rep) {
      SamplerOptions o = opts;
      o.seed = seed + rep;
      auto sampler = RobustL0SamplerSW::Create(o, time_window).value();
      for (size_t i = 0; i < tpoints.size(); ++i) {
        sampler.Insert(tpoints[i], tstamps[i]);
      }
      return sampler.SpaceWords();
    });
    double tpool_rate[2] = {0, 0};
    const size_t tlane_counts[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
      tpool_rate[i] = BestOf(repeats, data.size(), [&](int rep) {
        SamplerOptions o = opts;
        o.seed = seed + rep;
        auto pool =
            ShardedSwSamplerPool::Create(o, time_window, tlane_counts[i])
                .value();
        const Span<const Point> all(tpoints);
        const Span<const int64_t> stamps(tstamps);
        for (size_t off = 0; off < all.size(); off += 2048) {
          pool.FeedBorrowedStamped(all.subspan(off, 2048),
                                   stamps.subspan(off, 2048));
        }
        pool.Drain();
        return pool.SpaceWords();
      });
    }

    // Bounded-lateness scenarios (see file comment). Each measures the
    // disordered stream through the reorder front-end against the
    // canonically sorted stream fed strict — same points, same window.
    struct LateScenario {
      const char* name;
      std::vector<rl0::StampedPoint> stream;
      int64_t bound;
      size_t lanes;  // 0 = serial InsertStampedLate
    };
    const std::vector<rl0::StampedPoint> bursty =
        rl0::TimeStampedBursty(data, 3, 2048, time_window / 2, seed + dim);
    const LateScenario scenarios[3] = {
        {"late-jitter", rl0::DisorderWithinBound(stamped, 128, seed + dim),
         128, 0},
        {"late-skew", rl0::DisorderSkewed(stamped, 1024, seed + dim), 1024,
         0},
        {"late-bursty", rl0::DisorderWithinBound(bursty, 128, seed + dim + 1),
         128, 4},
    };
    struct LateResult {
      double sorted_rate = 0.0;
      double late_rate = 0.0;
      rl0::ReorderStats stats;
    };
    LateResult late_results[3];
    for (int s = 0; s < 3; ++s) {
      const LateScenario& sc = scenarios[s];
      std::vector<Point> lpoints;
      std::vector<int64_t> lstamps;
      rl0::SplitStamped(sc.stream, &lpoints, &lstamps);
      std::vector<Point> spoints = lpoints;
      std::vector<int64_t> sstamps = lstamps;
      rl0::ReorderStage::SortCanonical(&spoints, &sstamps);
      late_results[s].sorted_rate =
          BestOf(repeats, data.size(), [&](int rep) -> size_t {
            SamplerOptions o = opts;
            o.seed = seed + rep;
            if (sc.lanes == 0) {
              auto sampler =
                  RobustL0SamplerSW::Create(o, time_window).value();
              for (size_t i = 0; i < spoints.size(); ++i) {
                sampler.Insert(spoints[i], sstamps[i]);
              }
              return sampler.SpaceWords();
            }
            auto pool =
                ShardedSwSamplerPool::Create(o, time_window, sc.lanes)
                    .value();
            const Span<const Point> all(spoints);
            const Span<const int64_t> stamps(sstamps);
            for (size_t off = 0; off < all.size(); off += 2048) {
              pool.FeedBorrowedStamped(all.subspan(off, 2048),
                                       stamps.subspan(off, 2048));
            }
            pool.Drain();
            return pool.SpaceWords();
          });
      late_results[s].late_rate =
          BestOf(repeats, data.size(), [&](int rep) -> size_t {
            SamplerOptions o = opts;
            o.seed = seed + rep;
            o.allowed_lateness = sc.bound;
            if (sc.lanes == 0) {
              auto sampler =
                  RobustL0SamplerSW::Create(o, time_window).value();
              for (size_t i = 0; i < lpoints.size(); ++i) {
                sampler.InsertStampedLate(lpoints[i], lstamps[i]);
              }
              sampler.FlushLate();
              late_results[s].stats = sampler.late_stats();
              return sampler.SpaceWords();
            }
            auto pool =
                ShardedSwSamplerPool::Create(o, time_window, sc.lanes)
                    .value();
            const Span<const Point> all(lpoints);
            const Span<const int64_t> stamps(lstamps);
            for (size_t off = 0; off < all.size(); off += 2048) {
              pool.FeedStampedLate(all.subspan(off, 2048),
                                   stamps.subspan(off, 2048));
            }
            pool.FlushLate();
            pool.Drain();
            late_results[s].stats = pool.late_stats();
            return pool.SpaceWords();
          });
    }

    const double flat_x = flat / legacy;
    std::fprintf(stderr,
                 "%-10s %4zu %8zu | %12.0f %12.0f %7.2fx | %10.0f %10.0f "
                 "%10.0f %10.0f %10.0f | %10.0f %10.0f %10.0f\n",
                 data.name.c_str(), dim, data.size(), legacy, flat, flat_x,
                 pool_rate[0], pool_rate[1], pool_rate[2], pool_rate[3],
                 adapt4, tflat, tpool_rate[0], tpool_rate[1]);
    std::printf(
        "%s{\"workload\": \"%s\", \"dim\": %zu, \"points\": %zu, "
        "\"legacy_points_per_sec\": %.0f, \"flat_points_per_sec\": %.0f, "
        "\"flat_speedup\": %.3f, \"pool1_points_per_sec\": %.0f, "
        "\"pool2_points_per_sec\": %.0f, \"pool4_points_per_sec\": %.0f, "
        "\"pool8_points_per_sec\": %.0f, "
        "\"adaptive4_points_per_sec\": %.0f, "
        "\"time_flat_points_per_sec\": %.0f, "
        "\"time_pool1_points_per_sec\": %.0f, "
        "\"time_pool4_points_per_sec\": %.0f%s}",
        first ? "" : ", ", data.name.c_str(), dim, data.size(), legacy, flat,
        flat_x, pool_rate[0], pool_rate[1], pool_rate[2], pool_rate[3],
        adapt4, tflat, tpool_rate[0], tpool_rate[1],
        // Marks the pool columns only: flat_speedup is serial-vs-serial
        // and stays comparable on any core count.
        cores == 1 ? ", \"overhead_only\": true" : "");
    first = false;
    for (int s = 0; s < 3; ++s) {
      const LateScenario& sc = scenarios[s];
      const LateResult& lr = late_results[s];
      std::fprintf(stderr,
                   "  %-12s lateness=%-5lld lanes=%zu | sorted %10.0f p/s | "
                   "late %10.0f p/s (%.2fx) dropped=%llu\n",
                   sc.name, static_cast<long long>(sc.bound), sc.lanes,
                   lr.sorted_rate, lr.late_rate,
                   lr.late_rate / lr.sorted_rate,
                   static_cast<unsigned long long>(lr.stats.late_dropped));
      std::printf(
          ", {\"workload\": \"%s\", \"scenario\": \"%s\", \"dim\": %zu, "
          "\"points\": %zu, \"lateness\": %lld, \"lanes\": %zu, "
          "\"sorted_points_per_sec\": %.0f, \"late_points_per_sec\": %.0f, "
          "\"late_relative\": %.3f, \"late_dropped\": %llu%s}",
          data.name.c_str(), sc.name, dim, sc.stream.size(),
          static_cast<long long>(sc.bound), sc.lanes, lr.sorted_rate,
          lr.late_rate, lr.late_rate / lr.sorted_rate,
          static_cast<unsigned long long>(lr.stats.late_dropped),
          // The lanes > 0 scenario is a pool row; on one core it only
          // prices pipeline + reorder overhead.
          sc.lanes > 0 && cores == 1 ? ", \"overhead_only\": true" : "");
    }
  }
  std::printf("]}\n");
  return 0;
}
