// Checkpoint/journal benchmark for the crash-recovery layer
// (core/checkpoint.h).
//
// Sweeps the cut gap G (points fed between checkpoint cuts) over a
// paper-style noisy stream ingested by a 4-lane windowed pool and
// measures, per gap:
//
//   full    — CheckpointPool: full cut bytes and cut time;
//   delta   — CheckpointPoolDelta: incremental cut bytes and cut time
//             (the ratio against full is the payoff of dirty-epoch
//             tracking: quiet windows shrink the cut, churn grows it);
//   fold    — FoldPoolDelta: folding a delta onto its base (the
//             recovery-side cost of each incremental cut);
//   quiet   — CheckpointPoolDelta after a 64-point trickle past the
//             last cut: the quiet-window payoff the steady-churn means
//             above hide;
//   restore — RecoverPool from the end-of-run cut with an empty journal
//             (pure deserialization);
//   replay  — RecoverPool from an empty pre-feed cut plus the whole
//             journal: recovery throughput in replayed points/sec, the
//             number that sizes how far apart checkpoints can be for a
//             given restart-time budget.
//
// Output: a human-readable table on stderr and one JSON document per
// line on stdout (append to BENCH_snapshot.json to track the
// trajectory across PRs). RL0_REPEATS overrides the per-phase repeat
// count (default 3).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "rl0/core/checkpoint.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/geom/distance_kernels.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace {

using rl0::JournalWriter;
using rl0::NoisyDataset;
using rl0::Point;
using rl0::SamplerOptions;
using rl0::ShardedSwSamplerPool;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

NoisyDataset SnapshotStream(uint64_t seed) {
  const rl0::BaseDataset base =
      rl0::RandomUniform(1000, 5, seed, "Snapshot5");
  rl0::NearDupOptions nd;
  nd.max_dups = 100;  // paper-scale duplication: ~50k-point stream
  nd.seed = seed + 1;
  return rl0::MakeNearDuplicates(base, nd);
}

struct GapResult {
  size_t cuts = 0;
  double full_bytes = 0.0;       // mean per cut
  double delta_bytes = 0.0;      // mean per cut
  double full_cut_us = 0.0;      // mean per cut
  double delta_cut_us = 0.0;     // mean per cut
  double fold_us = 0.0;          // mean per fold
  size_t quiet_delta_bytes = 0;  // delta after a 64-point trickle
  double restore_ms = 0.0;       // best-of, end cut + empty journal
  double replay_points_per_sec = 0.0;  // best-of, empty cut + journal
  size_t journal_bytes = 0;
};

GapResult RunGap(const NoisyDataset& data, const SamplerOptions& opts,
                 size_t gap, int repeats) {
  GapResult result;
  auto pool = ShardedSwSamplerPool::Create(opts, 8192, 4).value();
  std::string journal;
  JournalWriter writer(&journal, opts.dim);
  rl0::AttachJournal(&pool, &writer);

  // The replay restore point: an empty cut before any feeding, so the
  // replay phase below covers the entire journal at every gap.
  std::string empty_cut;
  if (!rl0::CheckpointPool(&pool, writer.next_seq(), &empty_cut).ok()) {
    return result;
  }

  const rl0::Span<const Point> all(data.points);
  std::string chain = empty_cut;  // folded full the next delta chains on
  double full_bytes = 0.0, delta_bytes = 0.0;
  double full_us = 0.0, delta_us = 0.0, fold_us = 0.0;
  size_t cuts = 0;

  for (size_t offset = 0; offset < all.size(); offset += gap) {
    const size_t chunk = 4096;
    const size_t end = std::min(offset + gap, all.size());
    for (size_t off = offset; off < end; off += chunk) {
      pool.FeedBorrowed(all.subspan(off, std::min(chunk, end - off)));
    }
    pool.Drain();
    const uint64_t seq = writer.next_seq();

    std::string delta, fold;
    auto start = std::chrono::steady_clock::now();
    if (!rl0::CheckpointPoolDelta(&pool, chain, seq, &delta).ok()) break;
    delta_us += 1e6 * SecondsSince(start);
    start = std::chrono::steady_clock::now();
    if (!rl0::FoldPoolDelta(chain, delta, &fold).ok()) break;
    fold_us += 1e6 * SecondsSince(start);
    delta_bytes += static_cast<double>(delta.size());
    // The contemporaneous full cut (byte-identical to the fold; pinned
    // by tests/checkpoint_test.cc) prices what the delta replaces.
    std::string full;
    start = std::chrono::steady_clock::now();
    if (!rl0::CheckpointPool(&pool, seq, &full).ok()) break;
    full_us += 1e6 * SecondsSince(start);
    full_bytes += static_cast<double>(full.size());
    chain = std::move(full);
    ++cuts;
  }

  result.cuts = cuts;
  result.journal_bytes = journal.size();
  result.full_bytes = full_bytes / static_cast<double>(cuts);
  result.full_cut_us = full_us / static_cast<double>(cuts);
  result.delta_bytes = delta_bytes / static_cast<double>(cuts);
  result.delta_cut_us = delta_us / static_cast<double>(cuts);
  result.fold_us = fold_us / static_cast<double>(cuts);

  // The quiet-window payoff: a 64-point trickle past the last cut
  // dirties only the touched groups, so the delta collapses to the
  // live-id order list plus a handful of records.
  pool.FeedBorrowed(all.subspan(0, 64));
  pool.Drain();
  std::string quiet_delta;
  if (rl0::CheckpointPoolDelta(&pool, chain, writer.next_seq(), &quiet_delta)
          .ok()) {
    result.quiet_delta_bytes = quiet_delta.size();
    std::string fold;
    if (rl0::FoldPoolDelta(chain, quiet_delta, &fold).ok()) {
      chain = std::move(fold);
    }
  }
  const uint64_t total_fed = pool.points_fed();

  // Pure deserialization: the end-of-run cut, nothing to replay.
  double restore_s = 1e30;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    auto restored = rl0::RecoverPool(chain, "");
    restore_s = std::min(restore_s, SecondsSince(start));
    if (!restored.ok() ||
        restored.value().points_processed() != total_fed) {
      std::fprintf(stderr, "(restore mismatch)\n");
    }
  }
  result.restore_ms = 1e3 * restore_s;

  // Replay: the empty cut + the whole journal = the worst-case restart.
  double replay_s = 1e30;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    auto recovered = rl0::RecoverPool(empty_cut, journal);
    replay_s = std::min(replay_s, SecondsSince(start));
    if (!recovered.ok() ||
        recovered.value().points_processed() != total_fed) {
      std::fprintf(stderr, "(replay mismatch)\n");
    }
  }
  result.replay_points_per_sec = static_cast<double>(total_fed) / replay_s;
  return result;
}

}  // namespace

int main() {
  const int repeats = rl0::bench::EnvRepeats(3);
  const uint64_t seed = 20180618;  // the paper's PODS year + month + day
  const unsigned cores = std::thread::hardware_concurrency();

  const NoisyDataset data = SnapshotStream(91);
  const SamplerOptions opts = rl0::bench::PaperSamplerOptions(data, seed);

  std::printf("{\"bench\": \"snapshot\", \"repeats\": %d, "
              "\"dispatch\": \"%s\", \"cores\": %u, \"points\": %zu, "
              "\"gaps\": [",
              repeats, rl0::DistanceKernelDispatch(), cores, data.size());
  std::fprintf(stderr,
               "%8s %5s | %9s %9s %7s %8s | %9s %9s %8s | %10s %12s\n",
               "gap", "cuts", "full B", "delta B", "ratio", "quiet B",
               "full us", "delta us", "fold us", "restore ms", "replay p/s");

  bool first = true;
  for (const size_t gap : {1024, 8192, 32768}) {
    const GapResult r = RunGap(data, opts, gap, repeats);
    const double ratio = r.delta_bytes > 0 ? r.delta_bytes / r.full_bytes
                                           : 0.0;
    std::fprintf(stderr,
                 "%8zu %5zu | %9.0f %9.0f %6.1f%% %8zu | %9.1f %9.1f %8.1f "
                 "| %10.2f %12.0f\n",
                 gap, r.cuts, r.full_bytes, r.delta_bytes, 100.0 * ratio,
                 r.quiet_delta_bytes, r.full_cut_us, r.delta_cut_us,
                 r.fold_us, r.restore_ms, r.replay_points_per_sec);
    std::printf(
        "%s{\"gap\": %zu, \"cuts\": %zu, "
        "\"full_bytes\": %.0f, \"delta_bytes\": %.0f, "
        "\"delta_ratio\": %.4f, \"quiet_delta_bytes\": %zu, "
        "\"full_cut_us\": %.1f, \"delta_cut_us\": %.1f, \"fold_us\": %.1f, "
        "\"restore_ms\": %.3f, \"journal_bytes\": %zu, "
        "\"replay_points_per_sec\": %.0f}",
        first ? "" : ", ", gap, r.cuts, r.full_bytes, r.delta_bytes, ratio,
        r.quiet_delta_bytes, r.full_cut_us, r.delta_cut_us, r.fold_us,
        r.restore_ms, r.journal_bytes, r.replay_points_per_sec);
    first = false;
  }
  std::printf("]}\n");
  return 0;
}
