// Reproduces paper Figure 10: the empirical sampling distribution of
// Algorithm 1 on the rand20_pl dataset (see bench/harness.h for methodology).

#include "fig_main.h"

int main() { return rl0::bench::RunFigure(10); }
