// Reproduces paper Figure 13: processing time per item (pTime) of
// Algorithm 1 on the eight evaluation datasets, single-threaded, averaged
// over repeated full-stream scans (paper: 100 runs; default 20 here,
// RL0_REPEATS overrides).
//
// Expected shape (paper, Xeon E5-2667v3): 1–3.5 × 10^-5 s/item = 10–35
// µs/item, rising with dimension (Rand20 > Rand5 > Yacht ≈ Seeds).
// Absolute numbers depend on the machine; the cross-dataset ordering and
// the order of magnitude are what we reproduce.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace rl0::bench;
  const int repeats = EnvRepeats(20);
  std::printf("== Figure 13: pTime (per-item processing time) ==\n");
  std::printf("repeats per dataset: %d (paper: 100)\n", repeats);
  std::printf("%-10s %8s %6s %12s %14s\n", "dataset", "stream", "dim",
              "ns/item", "ms/item");
  for (const DatasetSpec& spec : PaperDatasets()) {
    const rl0::NoisyDataset data = Materialize(spec);
    const TimingResult t = RunTiming(data, repeats, 42);
    std::printf("%-10s %8llu %6zu %12.0f %14.3e\n", spec.name.c_str(),
                static_cast<unsigned long long>(t.stream_length), data.dim,
                t.ns_per_item, t.ns_per_item * 1e-6);
  }
  std::printf(
      "\npaper expectation: 1e-2 to 3.5e-2 ms/item on a 2015 Xeon; higher\n"
      "dimension => higher pTime (vector ops dominate). Compare shapes,\n"
      "not absolute values.\n");
  return 0;
}
