// Extension bench: robust heavy hitters (SpaceSaving over groups) on the
// power-law evaluation dataset. Reports recall of the true top-10 groups
// and the worst overestimate as the counter budget varies — the classical
// m/c error trade-off, now with group identity resolved through the
// near-duplicate substrate.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "harness.h"
#include "rl0/core/heavy_hitters.h"

int main() {
  using namespace rl0;
  using namespace rl0::bench;
  const DatasetSpec& spec = SpecForFigure(9);  // Rand5-pl
  const NoisyDataset data = Materialize(spec);

  std::map<uint32_t, uint64_t> truth;
  for (uint32_t g : data.group_of) ++truth[g];
  std::vector<std::pair<uint64_t, uint32_t>> by_count;
  for (const auto& [g, c] : truth) by_count.push_back({c, g});
  std::sort(by_count.rbegin(), by_count.rend());

  std::printf("== Extension: robust heavy hitters on %s ==\n",
              spec.name.c_str());
  std::printf("stream: %zu points, %zu groups, heaviest group %llu points\n",
              data.size(), data.num_groups,
              static_cast<unsigned long long>(by_count[0].first));
  std::printf("%10s %12s %14s %14s %12s\n", "counters", "top10 recall",
              "max overest.", "m/c bound", "words");
  for (size_t capacity : {16u, 32u, 64u, 128u, 256u}) {
    HeavyHittersOptions opts;
    opts.dim = data.dim;
    opts.alpha = data.alpha;
    opts.capacity = capacity;
    opts.seed = 11;
    auto hh = RobustHeavyHitters::Create(opts).value();
    for (const Point& p : data.points) hh.Insert(p);

    const auto top = hh.TopK(10);
    int recalled = 0;
    for (int h = 0; h < 10; ++h) {
      const uint32_t heavy_group = by_count[h].second;
      for (const auto& entry : top) {
        if (data.group_of[entry.stream_index] == heavy_group) {
          ++recalled;
          break;
        }
      }
    }
    uint64_t max_over = 0;
    for (const auto& entry : hh.TopK(capacity)) {
      const uint64_t true_count =
          truth[data.group_of[entry.stream_index]];
      if (entry.count > true_count) {
        max_over = std::max(max_over, entry.count - true_count);
      }
    }
    std::printf("%10zu %12.1f %14llu %14llu %12zu\n", capacity,
                recalled / 10.0, static_cast<unsigned long long>(max_over),
                static_cast<unsigned long long>(data.size() / capacity),
                hh.SpaceWords());
  }
  std::printf(
      "\nexpected shape: recall reaches 1.0 and the worst overestimate\n"
      "falls like m/c as the counter budget grows.\n");
  return 0;
}
