// Ablation (Section 2.3): the sampler variants.
//   (a) k samples without replacement: the κ0·k·log m cap keeps |Sacc| ≥ k
//       available and the returned k groups are distinct and uniform-ish.
//   (b) Random-point-as-representative (reservoir): within a sampled
//       group, every member point is returned with equal probability, so
//       heavy groups no longer always surface their first point.

#include <cstdio>
#include <vector>

#include "harness.h"

int main() {
  using namespace rl0;
  using namespace rl0::bench;
  std::printf("== Ablation: Section 2.3 variants ==\n\n");

  // (a) k-sampling without replacement.
  std::printf("-- k samples without replacement (200 groups) --\n");
  std::printf("%4s %10s %10s %16s\n", "k", "|Sacc|", "cap", "distinct/query");
  for (size_t k : {1u, 4u, 16u}) {
    SamplerOptions opts;
    opts.dim = 1;
    opts.alpha = 1.0;
    opts.seed = 21 + k;
    opts.k = k;
    opts.expected_stream_length = 1 << 14;
    auto sampler = RobustL0SamplerIW::Create(opts).value();
    for (int i = 0; i < 200; ++i) {
      sampler.Insert(Point{10.0 * i});
      sampler.Insert(Point{10.0 * i + 0.3});
    }
    Xoshiro256pp rng(31 + k);
    size_t distinct_total = 0;
    const int queries = 200;
    for (int q = 0; q < queries; ++q) {
      const auto result = sampler.SampleK(k, &rng);
      if (!result.ok()) continue;
      std::vector<uint64_t> idx;
      for (const SampleItem& item : result.value()) {
        idx.push_back(item.stream_index);
      }
      std::sort(idx.begin(), idx.end());
      distinct_total +=
          static_cast<size_t>(std::unique(idx.begin(), idx.end()) -
                              idx.begin());
    }
    std::printf("%4zu %10zu %10zu %16.2f\n", k, sampler.accept_size(),
                sampler.options().EffectiveAcceptCap(),
                static_cast<double>(distinct_total) / queries);
  }

  // (b) reservoir representative: distribution over the points of one
  // group of size 10.
  std::printf("\n-- random representative within a 10-point group --\n");
  const uint64_t runs = EnvRuns(20000);
  std::vector<uint64_t> counts(10, 0);
  for (uint64_t run = 0; run < runs; ++run) {
    SamplerOptions opts;
    opts.dim = 1;
    opts.alpha = 1.0;
    opts.seed = 5000 + run;
    opts.random_representative = true;
    opts.expected_stream_length = 64;
    auto sampler = RobustL0SamplerIW::Create(opts).value();
    for (int i = 0; i < 10; ++i) {
      sampler.Insert(Point{0.05 * i});
    }
    Xoshiro256pp rng(SplitMix64(run + 9));
    const auto sample = sampler.Sample(&rng);
    if (sample.has_value()) ++counts[sample->stream_index];
  }
  std::printf("point index : share (target 0.100)\n");
  for (size_t i = 0; i < counts.size(); ++i) {
    std::printf("  %zu: %.3f\n", i,
                static_cast<double>(counts[i]) / static_cast<double>(runs));
  }
  std::printf(
      "\nexpected shape: SampleK returns exactly k distinct groups per\n"
      "query; the reservoir variant spreads mass ~uniformly over all 10\n"
      "group members instead of pinning the first point.\n");
  return 0;
}
