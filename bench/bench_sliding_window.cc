// Ablation (Theorem 2.7): the hierarchical sliding-window sampler.
//   (a) Space vs window size: O(log w · log m) — quadrupling w adds ~2
//       levels, far from quadrupling space.
//   (b) Amortized per-item time vs window size.
//   (c) The within-window sampling profile: uniform up to the boundary-
//       group recency bias documented in DESIGN.md §3 (the newest ~log w
//       positions are oversampled up to ~2.5x; the Θ(1/n) band holds).

#include <chrono>
#include <cstdio>
#include <vector>

#include "harness.h"
#include "rl0/core/sw_sampler.h"

int main() {
  using namespace rl0;
  using namespace rl0::bench;

  std::printf("== Ablation: sliding-window sampler (Theorem 2.7) ==\n\n");

  // (a) + (b): space and time vs window size.
  std::printf("-- space/time vs window --\n");
  std::printf("%8s %8s %12s %12s %12s\n", "window", "levels", "peak words",
              "naive words", "ns/item");
  for (int64_t window : {64, 256, 1024, 4096, 16384}) {
    SamplerOptions opts;
    opts.dim = 1;
    opts.alpha = 1.0;
    opts.seed = 11;
    opts.accept_cap = 16;
    opts.expected_stream_length = 1 << 16;
    auto sampler = RobustL0SamplerSW::Create(opts, window).value();
    const int n = 40000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) {
      sampler.Insert(Point{10.0 * i}, i);
    }
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    std::printf("%8lld %8zu %12zu %12llu %12.0f\n",
                static_cast<long long>(window), sampler.num_levels(),
                sampler.PeakSpaceWords(),
                static_cast<unsigned long long>(window) * PointWords(1),
                seconds * 1e9 / n);
  }

  // (c): sampling profile across window positions.
  std::printf("\n-- within-window sampling profile (window=64) --\n");
  const int window = 64, stream_len = 300;
  const uint64_t runs = EnvRuns(20000);
  std::vector<uint64_t> counts(window, 0);
  for (uint64_t run = 0; run < runs; ++run) {
    SamplerOptions opts;
    opts.dim = 1;
    opts.alpha = 1.0;
    opts.seed = 10000 + run;
    opts.accept_cap = 10;
    opts.expected_stream_length = 1 << 16;
    auto sampler = RobustL0SamplerSW::Create(opts, window).value();
    for (int i = 0; i < stream_len; ++i) {
      sampler.Insert(Point{10.0 * i}, i);
    }
    Xoshiro256pp rng(SplitMix64(90000 + run));
    const auto sample = sampler.Sample(stream_len - 1, &rng);
    if (!sample.has_value()) continue;
    const int pos = static_cast<int>(sample->point[0] / 10.0 + 0.5);
    ++counts[pos - (stream_len - window)];
  }
  const double expected = static_cast<double>(runs) / window;
  std::printf("position (0=oldest alive) : sampled/expected ratio\n");
  for (int i = 0; i < window; i += 8) {
    std::printf("  pos %2d-%2d:", i, i + 7);
    for (int j = i; j < i + 8; ++j) {
      std::printf(" %.2f", static_cast<double>(counts[j]) / expected);
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected shape: ~1.0 across most of the window, ramping up over\n"
      "the newest ~log2(w) positions (boundary-group bias, DESIGN.md §3);\n"
      "all positions within the Theta(1/n) band [0.25, 4].\n");
  return 0;
}
