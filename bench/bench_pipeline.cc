// Sharded-ingestion throughput: persistent pipeline vs per-call
// spawn/join.
//
// The stream arrives in chunks (the streaming reality the pipeline was
// built for). Two ways to push a chunked stream through S shards:
//
//   spawnjoin — ShardedSamplerPool::ConsumeParallelSpawnJoin per chunk:
//               the pre-pipeline path; every chunk pays S thread spawns
//               and a full join barrier.
//   pipeline  — ShardedSamplerPool::FeedBorrowed per chunk + one final
//               Drain: persistent IngestPool workers, bounded queues,
//               no per-chunk thread churn or barrier.
//
// Sweeps shard counts {2, 4, 8} x chunk sizes {512, 2048, 8192} over a
// paper-style ~50k-point noisy stream (dim 5). Both paths make
// decision-preserving merges (tests/pipeline_determinism_test.cc); the
// comparison is pure ingestion machinery.
//
// Output: a human-readable table on stderr and ONE LINE of JSON on
// stdout. The convention for tracking the trajectory across PRs is to
// append:   ./build/bench_pipeline >> BENCH_pipeline.json
// (one JSON document per line, newest last). RL0_REPEATS overrides the
// per-path repeat count (default 3, best-of).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace {

using rl0::NoisyDataset;
using rl0::Point;
using rl0::SamplerOptions;
using rl0::ShardedSamplerPool;
using rl0::Span;

NoisyDataset PipelineStream(uint64_t seed) {
  const rl0::BaseDataset base = rl0::RandomUniform(1000, 5, seed, "Pipe5");
  rl0::NearDupOptions nd;
  nd.max_dups = 100;  // paper-scale duplication: ~50k-point stream
  nd.seed = seed + 1;
  return rl0::MakeNearDuplicates(base, nd);
}

template <typename FeedChunked>
double BestOf(int repeats, const NoisyDataset& data, FeedChunked feed) {
  double best = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const uint64_t processed = feed(rep);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (processed != data.size()) {
      std::fprintf(stderr, "(count mismatch: %llu)\n",
                   static_cast<unsigned long long>(processed));
    }
    best = std::max(best, static_cast<double>(data.size()) / seconds);
  }
  return best;
}

}  // namespace

int main() {
  const int repeats = rl0::bench::EnvRepeats(3);
  const uint64_t seed = 20180618;
  const NoisyDataset data = PipelineStream(91);
  const SamplerOptions opts = rl0::bench::PaperSamplerOptions(data, seed);
  const Span<const Point> all(data.points);

  std::fprintf(stderr, "%6s %7s %9s | %14s %14s | %8s\n", "shards",
               "chunk", "points", "spawnjoin p/s", "pipeline p/s",
               "speedup");
  // The core count rides with the rows: on one core both paths are
  // serialized, so the speedup measures thread-churn overhead only.
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("{\"bench\": \"pipeline\", \"repeats\": %d, \"points\": %zu, "
              "\"dim\": 5, \"cores\": %u, \"rows\": [",
              repeats, data.size(), cores);

  bool first = true;
  for (size_t shards : {2, 4, 8}) {
    for (size_t chunk : {512, 2048, 8192}) {
      // Interleave the two paths across repeats (best-of): a CPU hiccup
      // hits one repeat of one path, not a whole measurement.
      double spawnjoin = 0.0, pipeline = 0.0;
      for (int rep = 0; rep < repeats; ++rep) {
        spawnjoin = std::max(
            spawnjoin,
            BestOf(1, data, [&](int r) -> uint64_t {
              SamplerOptions o = opts;
              o.seed = seed + static_cast<uint64_t>(rep * 17 + r);
              auto pool = ShardedSamplerPool::Create(o, shards).value();
              for (size_t off = 0; off < all.size(); off += chunk) {
                pool.ConsumeParallelSpawnJoin(all.subspan(off, chunk));
              }
              return pool.points_processed();
            }));
        pipeline = std::max(
            pipeline,
            BestOf(1, data, [&](int r) -> uint64_t {
              SamplerOptions o = opts;
              o.seed = seed + static_cast<uint64_t>(rep * 17 + r);
              auto pool = ShardedSamplerPool::Create(o, shards).value();
              for (size_t off = 0; off < all.size(); off += chunk) {
                pool.FeedBorrowed(all.subspan(off, chunk));
              }
              pool.Drain();
              return pool.points_processed();
            }));
      }
      const double speedup = pipeline / spawnjoin;
      std::fprintf(stderr, "%6zu %7zu %9zu | %14.0f %14.0f | %7.2fx\n",
                   shards, chunk, data.size(), spawnjoin, pipeline,
                   speedup);
      std::printf("%s{\"shards\": %zu, \"chunk\": %zu, "
                  "\"spawnjoin_points_per_sec\": %.0f, "
                  "\"pipeline_points_per_sec\": %.0f, "
                  "\"pipeline_speedup\": %.3f%s}",
                  first ? "" : ", ", shards, chunk, spawnjoin, pipeline,
                  speedup,
                  cores == 1 ? ", \"overhead_only\": true" : "");
      first = false;
    }
  }
  std::printf("]}\n");
  return 0;
}
