// Shared entry point for the Figure 5-12 distribution benchmarks.

#ifndef RL0_BENCH_FIG_MAIN_H_
#define RL0_BENCH_FIG_MAIN_H_

#include "harness.h"

namespace rl0 {
namespace bench {

/// Runs the empirical-sampling-distribution experiment for the given paper
/// figure (5..12) and prints the report. Returns the process exit code.
inline int RunFigure(int figure) {
  const DatasetSpec& spec = SpecForFigure(figure);
  const NoisyDataset data = Materialize(spec);
  const uint64_t runs = EnvRuns(spec.default_runs);
  const DistributionResult result = RunDistribution(data, runs, 10'000);
  PrintDistributionReport(spec, data, result);
  return 0;
}

}  // namespace bench
}  // namespace rl0

#endif  // RL0_BENCH_FIG_MAIN_H_
