// Reproduces paper Figure 14: peak space usage (pSpace, in words) of
// Algorithm 1 on the eight evaluation datasets, under the documented
// accounting model (util/space.h): points cost dim+2 words, associative
// entries 3 words.
//
// Expected shape (paper): a few hundred to a few thousand words; the
// dimension of the points is the dominant factor (Rand20 > Rand5), while
// stream length only enters logarithmically through the accept cap.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace rl0::bench;
  const int seeds = EnvRepeats(10);
  std::printf("== Figure 14: pSpace (peak words) ==\n");
  std::printf("seeds averaged per dataset: %d\n", seeds);
  std::printf("%-10s %8s %6s %12s %16s\n", "dataset", "stream", "dim",
              "peak words", "naive words");
  for (const DatasetSpec& spec : PaperDatasets()) {
    const rl0::NoisyDataset data = Materialize(spec);
    const double words = RunPeakSpace(data, seeds, 77);
    // Naive alternative: store every representative seen so far.
    const double naive = static_cast<double>(data.num_groups) *
                         static_cast<double>(rl0::PointWords(data.dim));
    std::printf("%-10s %8zu %6zu %12.0f %16.0f\n", spec.name.c_str(),
                data.size(), data.dim, words, naive);
  }
  std::printf(
      "\npaper expectation: space scales with point dimension and stays\n"
      "logarithmic in the stream length (compare against the naive\n"
      "store-all-representatives column).\n");
  return 0;
}
