// Duplicate-suppression front-end throughput (core/dup_filter.h).
//
// The front-end targets the regime the paper's streams live in: most
// arrivals are near-duplicates of a group the sampler already tracks, so
// the full probe (cell key, adjacency enumeration, candidate DFS) mostly
// rediscovers a representative it has seen before. The bench isolates
// that regime with a stationary group population:
//
//   1. 64 well-separated base groups (below the accept cap, so the rate
//      stays 1 and the structure generation settles after warmup);
//   2. a measured stream where each arrival is, with probability
//      `dup_ratio`, an exact byte copy of a base representative (the
//      front-end's hit case) and otherwise a fresh within-alpha
//      perturbation of one (a miss that re-probes and re-arms the cache).
//
// Both configurations ingest the identical stream; the front-end's
// decision-identity contract (accepted decisions and RNG consumption are
// bit-identical with the filter on or off) is pinned by the determinism
// suites and spot-checked here via the final accept set.
//
// Sweeps dup_ratio {0.5, 0.9, 0.99} x dim {2, 20} x filter {off, on}.
//
// Output: a human-readable table on stderr and ONE LINE of JSON on
// stdout. Append per PR:   ./build/bench_filter >> BENCH_filter.json
// (one JSON document per line, newest last). RL0_REPEATS overrides the
// per-configuration repeat count (default 3, best-of). The row records
// "cores" and the kernel dispatch so the JSONL trajectory stays
// interpretable across machines; filter-on vs filter-off is a
// single-thread comparison, so no overhead_only marking applies.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "rl0/core/dup_filter.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/core/rep_table.h"
#include "rl0/geom/distance_kernels.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"
#include "rl0/util/rng.h"

namespace {

using rl0::NoisyDataset;
using rl0::Point;
using rl0::RobustL0SamplerIW;
using rl0::SamplerOptions;

constexpr size_t kGroups = 64;
constexpr size_t kMeasured = 50000;

/// One point per group: its first occurrence in (shuffled) stream
/// order, which is also the representative the warmup phase installs.
/// Exact repeats are drawn from these — one byte pattern per group, the
/// "same observation seen again" case the front-end caches. (Drawing
/// repeats from every warm point instead would alternate two byte
/// patterns of one group through one direct-mapped slot — both in the
/// same grid cell — and measure cache thrash, not the probe saving.)
std::vector<Point> GroupRepresentatives(const NoisyDataset& data) {
  std::vector<Point> reps;
  reps.reserve(kGroups);
  std::vector<bool> seen(data.num_groups, false);
  for (size_t i = 0; i < data.points.size(); ++i) {
    const uint32_t g = data.group_of[i];
    if (!seen[g]) {
      seen[g] = true;
      reps.push_back(data.points[i]);
    }
  }
  return reps;
}

/// The measured arrivals: exact repeats of a group center with
/// probability `dup_ratio`, within-alpha perturbations of one otherwise.
/// Deterministic per seed, shared verbatim by the filter-on and
/// filter-off runs.
std::vector<Point> MakeStream(const NoisyDataset& data,
                              const std::vector<Point>& centers,
                              double dup_ratio, uint64_t seed) {
  rl0::Xoshiro256pp rng(rl0::SplitMix64(seed));
  const size_t dim = data.points[0].dim();
  std::vector<Point> stream;
  stream.reserve(kMeasured);
  for (size_t i = 0; i < kMeasured; ++i) {
    const Point& base = centers[rng.NextBounded(centers.size())];
    if (rng.NextDouble() < dup_ratio) {
      stream.push_back(base);
      continue;
    }
    // A fresh near-duplicate: noise of length uniform in (0, 0.4 alpha),
    // well inside the group's alpha-ball.
    Point noise(dim);
    double norm2 = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      noise[j] = rng.NextDouble() * 2.0 - 1.0;
      norm2 += noise[j] * noise[j];
    }
    const double scale =
        data.alpha * 0.4 * rng.NextDouble() / std::sqrt(std::max(norm2, 1e-30));
    stream.push_back(base + noise * scale);
  }
  return stream;
}

struct RunResult {
  double points_per_sec = 0.0;
  size_t accept_size = 0;
  rl0::DupFilterStats stats;
};

RunResult RunOnce(const SamplerOptions& opts, const NoisyDataset& warm,
                  const std::vector<Point>& stream) {
  RobustL0SamplerIW sampler = RobustL0SamplerIW::Create(opts).value();
  sampler.InsertBatch(warm.points);  // builds the stationary group set
  const auto start = std::chrono::steady_clock::now();
  sampler.InsertBatch(stream);
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  RunResult r;
  r.points_per_sec = static_cast<double>(stream.size()) / seconds;
  r.accept_size = sampler.accept_size();
  r.stats = sampler.filter_stats();
  return r;
}

}  // namespace

int main() {
  const int repeats = rl0::bench::EnvRepeats(3);
  const uint64_t seed = 20180618;
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("{\"bench\": \"filter\", \"repeats\": %d, \"cores\": %u, "
              "\"dispatch\": \"%s\", \"cell_index_dispatch\": \"%s\", "
              "\"filter_compiled_in\": %s, \"rows\": [",
              repeats, cores, rl0::DistanceKernelDispatch(),
              rl0::CellIndexDispatch(),
              rl0::DupFilter::kCompiledIn ? "true" : "false");
  std::fprintf(stderr, "%4s %6s %8s | %12s %12s %8s | %9s %9s\n", "dim",
               "dup", "points", "off p/s", "on p/s", "speedup", "hits",
               "misses");

  bool first = true;
  for (size_t dim : {size_t{2}, size_t{20}}) {
    const rl0::BaseDataset base = rl0::RandomUniform(
        kGroups, dim, 77 + dim, "Filter" + std::to_string(dim));
    rl0::NearDupOptions nd;
    nd.max_dups = 1;  // one rep per group: a stationary, well-separated set
    nd.seed = 78 + dim;
    const NoisyDataset data = rl0::MakeNearDuplicates(base, nd);

    const std::vector<Point> centers = GroupRepresentatives(data);

    for (double dup_ratio : {0.5, 0.9, 0.99}) {
      const std::vector<Point> stream =
          MakeStream(data, centers, dup_ratio,
                     seed + dim * 1000 +
                         static_cast<uint64_t>(dup_ratio * 100));
      SamplerOptions opts = rl0::bench::PaperSamplerOptions(data, seed);
      // Keep the sampling rate at 1: with every group below the accept
      // cap the accept set is the full group population for any seed,
      // the structure generation settles after warmup, and every
      // measured arrival takes the probe (the regime the front-end
      // targets). The paper cap would halve the rate at 64 groups.
      opts.accept_cap = 2 * kGroups;

      // Interleave on/off across repeats (best-of): a CPU hiccup hits one
      // repeat of one configuration, not a whole measurement.
      RunResult off, on;
      for (int rep = 0; rep < repeats; ++rep) {
        SamplerOptions o = opts;
        o.seed = seed + static_cast<uint64_t>(rep);
        o.dup_filter = false;
        const RunResult r_off = RunOnce(o, data, stream);
        if (r_off.points_per_sec > off.points_per_sec) off = r_off;
        o.dup_filter = true;
        const RunResult r_on = RunOnce(o, data, stream);
        if (r_on.points_per_sec > on.points_per_sec) on = r_on;
        if (r_on.accept_size != r_off.accept_size) {
          // Decision identity is a hard contract; a same-seed mismatch
          // means the front-end (not the machine) is broken.
          std::fprintf(stderr, "DECISION MISMATCH: on=%zu off=%zu\n",
                       r_on.accept_size, r_off.accept_size);
          return 1;
        }
      }
      const double speedup = on.points_per_sec / off.points_per_sec;
      std::fprintf(stderr,
                   "%4zu %6.2f %8zu | %12.0f %12.0f | %7.2fx | %9llu %9llu\n",
                   dim, dup_ratio, stream.size(), off.points_per_sec,
                   on.points_per_sec, speedup,
                   static_cast<unsigned long long>(on.stats.hits),
                   static_cast<unsigned long long>(on.stats.misses));
      std::printf("%s{\"dim\": %zu, \"dup_ratio\": %.2f, \"points\": %zu, "
                  "\"off_points_per_sec\": %.0f, "
                  "\"on_points_per_sec\": %.0f, "
                  "\"filter_speedup\": %.3f, "
                  "\"hits\": %llu, \"misses\": %llu}",
                  first ? "" : ", ", dim, dup_ratio, stream.size(),
                  off.points_per_sec, on.points_per_sec, speedup,
                  static_cast<unsigned long long>(on.stats.hits),
                  static_cast<unsigned long long>(on.stats.misses));
      first = false;
    }
  }
  std::printf("]}\n");
  return 0;
}
