// Ablation (Theorem 2.4): space and sample-rate dynamics of Algorithm 1
// as the number of groups grows. Streams of n single-point groups for
// n = 1k..128k: peak space must grow like log n (through the κ0·log m
// accept cap and the O(1)-factor reject set), while R ≈ n/cap doubles in
// step with n.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace rl0;
  std::printf("== Ablation: space growth vs stream length (Theorem 2.4) ==\n");
  std::printf("%10s %8s %10s %12s %10s %10s\n", "groups", "level", "R",
              "peak words", "|Sacc|", "|Srej|");
  for (uint64_t n : {1000, 4000, 16000, 64000, 128000}) {
    SamplerOptions opts;
    opts.dim = 1;
    opts.alpha = 1.0;
    opts.seed = 7;
    opts.expected_stream_length = n;
    auto sampler = RobustL0SamplerIW::Create(opts).value();
    for (uint64_t i = 0; i < n; ++i) {
      sampler.Insert(Point{10.0 * static_cast<double>(i)});
    }
    std::printf("%10llu %8u %10llu %12zu %10zu %10zu\n",
                static_cast<unsigned long long>(n), sampler.level(),
                static_cast<unsigned long long>(sampler.rate_reciprocal()),
                sampler.PeakSpaceWords(), sampler.accept_size(),
                sampler.reject_size());
  }
  std::printf(
      "\nexpected shape: peak words grow ~logarithmically with the group\n"
      "count (the accept cap is kappa0*ceil(log2 m)); R doubles roughly\n"
      "linearly with n. A linear-space method would grow 128x down this\n"
      "table; the peak-words column must not.\n");
  return 0;
}
