// Ablation (paper introduction): why standard distinct sampling fails on
// near-duplicate data. On the power-law datasets the classical min-rank
// ℓ0-sampler returns a uniform random *point* among distinct points, so
// the heaviest group (with ~n duplicates out of ~n·H_n points) is sampled
// ~22% of the time instead of 1/n. The robust sampler stays uniform.

#include <cstdio>

#include "harness.h"
#include "rl0/baseline/standard_l0.h"

int main() {
  using namespace rl0;
  using namespace rl0::bench;
  std::printf("== Ablation: standard vs robust sampler bias ==\n");

  const DatasetSpec& spec = SpecForFigure(9);  // Rand5-pl
  const NoisyDataset data = Materialize(spec);
  const RepresentativeStream reps = ExtractRepresentatives(data);
  const uint64_t runs = EnvRuns(8000);

  SampleDistribution robust(data.num_groups);
  SampleDistribution standard(data.num_groups);
  uint64_t empty_runs = 0;
  for (uint64_t run = 0; run < runs; ++run) {
    auto sampler =
        RobustL0SamplerIW::Create(PaperSamplerOptions(data, 600 + run))
            .value();
    for (const Point& p : reps.points) sampler.Insert(p);
    Xoshiro256pp rng(SplitMix64(run * 13 + 1));
    const auto sample = sampler.Sample(&rng);
    if (sample.has_value()) {
      robust.Record(reps.group_of[sample->stream_index]);
    } else {
      ++empty_runs;
    }

    StandardL0Sampler classic(run * 17 + 3);
    for (size_t i = 0; i < data.points.size(); ++i) {
      classic.Insert(data.points[i]);
    }
    const auto biased = classic.Sample();
    if (biased.has_value()) {
      standard.Record(data.group_of[biased->stream_index]);
    }
  }

  std::printf("dataset %s: %zu groups, %zu points, runs=%llu\n",
              spec.name.c_str(), data.num_groups, data.size(),
              static_cast<unsigned long long>(runs));
  std::printf("%-22s %12s %12s %8s\n", "sampler", "stdDevNm", "maxDevNm",
              "zeros");
  std::printf("%-22s %12.4f %12.4f %8zu\n", "robust (Algorithm 1)",
              robust.StdDevNm(), robust.MaxDevNm(), robust.ZeroGroups());
  std::printf("%-22s %12.4f %12.4f %8zu\n", "standard min-rank l0",
              standard.StdDevNm(), standard.MaxDevNm(),
              standard.ZeroGroups());
  std::printf("(robust empty runs: %llu)\n",
              static_cast<unsigned long long>(empty_runs));
  std::printf(
      "\nexpected shape: the standard sampler's maxDevNm is >= an order of\n"
      "magnitude above the robust sampler's (it tracks group sizes, which\n"
      "are power-law); the robust sampler sits near the noise floor.\n");
  return 0;
}
