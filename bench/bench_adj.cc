// Ablation (Section 6.2): computing adj(p) — the paper's pruned DFS over
// per-axis nearest points versus naive enumeration of the full offset
// block. Google-benchmark micro-benchmark across dimensions; the naive
// 3^d walk is capped at d = 12 (3^20 ≈ 3.5e9 cells would take minutes).

#include <benchmark/benchmark.h>

#include "rl0/geom/point.h"
#include "rl0/grid/random_grid.h"
#include "rl0/util/rng.h"

namespace {

rl0::Point RandomPoint(size_t dim, rl0::Xoshiro256pp* rng) {
  rl0::Point p(dim);
  for (size_t j = 0; j < dim; ++j) p[j] = 100.0 * rng->NextDouble();
  return p;
}

void BM_AdjDfs(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  // Section 4 regime: side = d·α with α = 1.
  rl0::RandomGrid grid(dim, static_cast<double>(dim), 42);
  rl0::Xoshiro256pp rng(dim);
  std::vector<rl0::Point> points;
  for (int i = 0; i < 64; ++i) points.push_back(RandomPoint(dim, &rng));
  std::vector<uint64_t> out;
  size_t i = 0;
  for (auto _ : state) {
    grid.AdjacentCells(points[i++ % points.size()], 1.0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["cells"] = static_cast<double>(out.size());
}
BENCHMARK(BM_AdjDfs)->Arg(2)->Arg(5)->Arg(8)->Arg(12)->Arg(20)->Arg(35);

void BM_AdjNaive(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  rl0::RandomGrid grid(dim, static_cast<double>(dim), 42);
  rl0::Xoshiro256pp rng(dim);
  std::vector<rl0::Point> points;
  for (int i = 0; i < 64; ++i) points.push_back(RandomPoint(dim, &rng));
  std::vector<uint64_t> out;
  size_t i = 0;
  for (auto _ : state) {
    grid.AdjacentCellsNaive(points[i++ % points.size()], 1.0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["cells"] = static_cast<double>(out.size());
}
BENCHMARK(BM_AdjNaive)->Arg(2)->Arg(5)->Arg(8)->Arg(12);

// The paper's literal Algorithm 6 (three moves per axis), valid in the
// side ≥ α regime — compare constant factors against the generalized DFS.
void BM_AdjPaperDfs(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  rl0::RandomGrid grid(dim, static_cast<double>(dim), 42);
  rl0::Xoshiro256pp rng(dim);
  std::vector<rl0::Point> points;
  for (int i = 0; i < 64; ++i) points.push_back(RandomPoint(dim, &rng));
  std::vector<uint64_t> out;
  size_t i = 0;
  for (auto _ : state) {
    grid.AdjacentCellsPaperDfs(points[i++ % points.size()], 1.0, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AdjPaperDfs)->Arg(2)->Arg(5)->Arg(8)->Arg(12)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
