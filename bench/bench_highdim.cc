// Ablation (Section 4 / Lemma 4.2): high-dimensional sparse datasets with
// the side = d·α grid. Reports per-item time, the reject/accept balance
// (Lemma 4.2: rejects must not blow up like the worst-case 2^d), and the
// DFS node count of the adjacency search per dimension.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "harness.h"
#include "rl0/baseline/exact_partition.h"

namespace {

rl0::NoisyDataset Sparse(size_t groups, size_t dim, uint64_t seed) {
  const double beta =
      1.2 * std::pow(static_cast<double>(dim), 1.5);
  const rl0::BaseDataset centers =
      rl0::SeparatedCenters(groups, dim, beta + 1.0, seed);
  rl0::NoisyDataset out;
  out.dim = dim;
  out.alpha = 1.0;
  out.beta = beta;
  out.num_groups = groups;
  rl0::Xoshiro256pp rng(seed ^ 0xFEEDULL);
  for (size_t g = 0; g < groups; ++g) {
    for (int i = 0; i < 4; ++i) {
      rl0::Point p = centers.points[g];
      p[rng.NextBounded(dim)] += 0.4 * (rng.NextDouble() - 0.5);
      out.points.push_back(p);
      out.group_of.push_back(static_cast<uint32_t>(g));
    }
  }
  for (size_t i = out.points.size(); i > 1; --i) {
    const size_t j = rng.NextBounded(i);
    std::swap(out.points[i - 1], out.points[j]);
    std::swap(out.group_of[i - 1], out.group_of[j]);
  }
  return out;
}

}  // namespace

int main() {
  using namespace rl0;
  std::printf("== Ablation: high dimensions (Section 4, Lemma 4.2) ==\n");
  std::printf("%6s %10s %10s %10s %14s\n", "dim", "ns/item", "|Sacc|",
              "|Srej|", "rej/cand");
  for (size_t dim : {5u, 10u, 20u, 35u, 50u}) {
    const NoisyDataset data = Sparse(400, dim, 3 + dim);
    SamplerOptions opts;
    opts.dim = dim;
    opts.alpha = 1.0;
    opts.seed = 9 + dim;
    opts.side_mode = GridSideMode::kHighDim;
    opts.accept_cap = 16;
    opts.expected_stream_length = data.size();
    auto sampler = RobustL0SamplerIW::Create(opts).value();
    const auto start = std::chrono::steady_clock::now();
    for (const Point& p : data.points) sampler.Insert(p);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    const double rej_frac =
        static_cast<double>(sampler.reject_size()) /
        static_cast<double>(sampler.accept_size() + sampler.reject_size());
    std::printf("%6zu %10.0f %10zu %10zu %14.3f\n", dim,
                seconds * 1e9 / static_cast<double>(data.size()),
                sampler.accept_size(), sampler.reject_size(), rej_frac);
  }
  std::printf(
      "\nexpected shape: per-item time grows polynomially (vector math +\n"
      "adjacency DFS), NOT like 3^d; the reject fraction stays bounded\n"
      "away from 1 (Lemma 4.2), far below the worst-case 2^d blowup.\n");
  return 0;
}
