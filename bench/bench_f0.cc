// Ablation (Section 5): robust F0 estimation built on the ℓ0-samplers.
//   (a) Infinite window: relative error and space vs ε on a noisy stream
//       whose robust F0 is known by construction.
//   (b) Sliding window: FM vs HyperLogLog combiners vs copy count.

#include <cmath>
#include <cstdio>

#include "harness.h"
#include "rl0/core/f0_iw.h"
#include "rl0/core/f0_sw.h"

namespace {

rl0::NoisyDataset F0Stream(size_t groups, uint64_t seed) {
  const rl0::BaseDataset base = rl0::RandomUniform(groups, 4, seed, "F0");
  rl0::NearDupOptions nd;
  nd.max_dups = 10;
  nd.seed = seed + 1;
  return rl0::MakeNearDuplicates(base, nd);
}

}  // namespace

int main() {
  using namespace rl0;
  std::printf("== Ablation: F0 estimation (Section 5) ==\n\n");

  std::printf("-- infinite window: error vs epsilon (truth = 2000) --\n");
  std::printf("%8s %8s %12s %12s %12s\n", "epsilon", "copies", "estimate",
              "rel.err", "words");
  const NoisyDataset data = F0Stream(2000, 5);
  for (double epsilon : {0.4, 0.2, 0.1}) {
    F0Options opts;
    opts.sampler.dim = data.dim;
    opts.sampler.alpha = data.alpha;
    opts.sampler.seed = 17;
    opts.sampler.side_mode = GridSideMode::kHighDim;
    opts.epsilon = epsilon;
    opts.copies = 9;
    auto est = F0EstimatorIW::Create(opts).value();
    for (const Point& p : data.points) est.Insert(p);
    const double estimate = est.Estimate();
    std::printf("%8.2f %8zu %12.0f %12.4f %12zu\n", epsilon, opts.copies,
                estimate, std::abs(estimate - 2000.0) / 2000.0,
                est.SpaceWords());
  }

  std::printf(
      "\n-- sliding window: combiners vs copies (truth = 256 alive) --\n");
  std::printf("%8s %6s %14s %14s\n", "copies", "reps", "FM estimate",
              "HLL estimate");
  for (size_t copies : {8u, 16u, 32u}) {
    double estimates[2];
    for (int which = 0; which < 2; ++which) {
      F0SwOptions opts;
      opts.sampler.dim = 1;
      opts.sampler.alpha = 1.0;
      opts.sampler.seed = 23 + which;
      opts.window = 4096;
      opts.copies = copies;
      opts.repetitions = 3;
      opts.combiner = which == 0 ? F0SwCombiner::kFlajoletMartin
                                 : F0SwCombiner::kHyperLogLog;
      auto est = F0EstimatorSW::Create(opts).value();
      // 512 groups streamed; the last 256 stay in the window.
      int stamp = 0;
      for (int i = 0; i < 512; ++i) {
        est.Insert(Point{10.0 * i}, stamp);
        stamp += 4096 / 256;
      }
      estimates[which] = est.Estimate(stamp);
    }
    std::printf("%8zu %6d %14.0f %14.0f\n", copies, 3, estimates[0],
                estimates[1]);
  }
  std::printf(
      "\nexpected shape: IW error falls as epsilon shrinks while space\n"
      "rises ~1/eps^2; both SW combiners land within a small constant\n"
      "factor of 256, tightening with more copies.\n");
  return 0;
}
