// Reproduces paper Figure 12: the empirical sampling distribution of
// Algorithm 1 on the seeds_pl dataset (see bench/harness.h for methodology).

#include "fig_main.h"

int main() { return rl0::bench::RunFigure(12); }
