// Reproduces paper Figure 5: the empirical sampling distribution of
// Algorithm 1 on the rand5 dataset (see bench/harness.h for methodology).

#include "fig_main.h"

int main() { return rl0::bench::RunFigure(5); }
