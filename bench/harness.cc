#include "harness.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "rl0/util/check.h"

namespace rl0 {
namespace bench {

const std::vector<DatasetSpec>& PaperDatasets() {
  static const std::vector<DatasetSpec>* specs = [] {
    auto* v = new std::vector<DatasetSpec>;
    const auto add = [&](std::string name, int figure, uint64_t paper_runs,
                         uint64_t default_runs,
                         std::function<BaseDataset()> base,
                         DupDistribution distribution) {
      v->push_back(DatasetSpec{std::move(name), figure, paper_runs,
                               default_runs, std::move(base), distribution});
    };
    add("Rand5", 5, 200000, 30000, [] { return Rand5(); },
        DupDistribution::kUniform);
    add("Rand20", 6, 200000, 30000, [] { return Rand20(); },
        DupDistribution::kUniform);
    add("Yacht", 7, 500000, 40000, [] { return YachtLike(); },
        DupDistribution::kUniform);
    add("Seeds", 8, 500000, 40000, [] { return SeedsLike(); },
        DupDistribution::kUniform);
    add("Rand5-pl", 9, 200000, 30000, [] { return Rand5(); },
        DupDistribution::kPowerLaw);
    add("Rand20-pl", 10, 200000, 30000, [] { return Rand20(); },
        DupDistribution::kPowerLaw);
    add("Yacht-pl", 11, 500000, 40000, [] { return YachtLike(); },
        DupDistribution::kPowerLaw);
    add("Seeds-pl", 12, 500000, 40000, [] { return SeedsLike(); },
        DupDistribution::kPowerLaw);
    return v;
  }();
  return *specs;
}

const DatasetSpec& SpecForFigure(int figure) {
  for (const DatasetSpec& spec : PaperDatasets()) {
    if (spec.figure == figure) return spec;
  }
  RL0_CHECK(false);
  return PaperDatasets()[0];
}

NoisyDataset Materialize(const DatasetSpec& spec, uint64_t seed) {
  NearDupOptions opts;
  opts.distribution = spec.distribution;
  opts.max_dups = 100;  // paper: k_i uniform in {1..100}
  opts.seed = seed;
  return MakeNearDuplicates(spec.base(), opts);
}

SamplerOptions PaperSamplerOptions(const NoisyDataset& data, uint64_t seed) {
  SamplerOptions opts;
  opts.dim = data.dim;
  opts.alpha = data.alpha;
  opts.seed = seed;
  opts.side_mode = GridSideMode::kHighDim;
  opts.hash_family = HashFamily::kMix64;
  opts.kappa0 = 4.0;
  opts.expected_stream_length = std::max<uint64_t>(data.size(), 4);
  return opts;
}

DistributionResult RunDistribution(const NoisyDataset& data, uint64_t runs,
                                   uint64_t seed_base) {
  const RepresentativeStream reps = ExtractRepresentatives(data);
  DistributionResult result;
  result.distribution = SampleDistribution(data.num_groups);
  result.runs = runs;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t run = 0; run < runs; ++run) {
    auto sampler =
        RobustL0SamplerIW::Create(PaperSamplerOptions(data, seed_base + run))
            .value();
    sampler.InsertBatch(reps.points);
    Xoshiro256pp rng(SplitMix64(seed_base * 31 + run));
    const auto sample = sampler.Sample(&rng);
    if (!sample.has_value()) {
      ++result.empty_runs;
      continue;
    }
    result.distribution.Record(reps.group_of[sample->stream_index]);
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

void PrintDistributionReport(const DatasetSpec& spec,
                             const NoisyDataset& data,
                             const DistributionResult& result) {
  const SampleDistribution& dist = result.distribution;
  std::printf("== Figure %d: empirical sampling distribution on %s ==\n",
              spec.figure, spec.name.c_str());
  std::printf("dataset\tgroups=%zu\tstream=%zu\tdim=%zu\talpha=%.6g\n",
              data.num_groups, data.size(), data.dim, data.alpha);
  std::printf(
      "runs\t%llu (paper: %llu; set RL0_RUNS to scale)\tempty_runs\t%llu\n",
      static_cast<unsigned long long>(result.runs),
      static_cast<unsigned long long>(spec.paper_runs),
      static_cast<unsigned long long>(result.empty_runs));

  const double expected = static_cast<double>(dist.total()) /
                          static_cast<double>(dist.num_groups());
  std::printf("per-group count\texpected=%.1f\tmin=%llu\tmax=%llu\n",
              expected, static_cast<unsigned long long>(dist.MinCount()),
              static_cast<unsigned long long>(dist.MaxCount()));

  // Histogram of per-group counts in 10 buckets across [min, max] — the
  // textual analogue of the paper's per-group bar plots.
  const uint64_t lo = dist.MinCount(), hi = std::max(dist.MaxCount(), lo + 1);
  std::vector<int> buckets(10, 0);
  for (uint64_t c : dist.counts()) {
    size_t b = static_cast<size_t>((c - lo) * 10 / (hi - lo + 1));
    if (b > 9) b = 9;
    ++buckets[b];
  }
  std::printf("count histogram (10 buckets over [%llu, %llu]):\n",
              static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(hi));
  for (size_t b = 0; b < buckets.size(); ++b) {
    std::printf("  [%5.0f-%5.0f) %4d |",
                lo + b * (hi - lo + 1) / 10.0,
                lo + (b + 1) * (hi - lo + 1) / 10.0, buckets[b]);
    for (int s = 0; s < buckets[b] * 60 / std::max(1, static_cast<int>(
                                                          data.num_groups));
         ++s) {
      std::printf("#");
    }
    std::printf("\n");
  }

  const double floor =
      SampleDistribution::StdDevNoiseFloor(dist.num_groups(), dist.total());
  std::printf("stdDevNm\t%.4f\t(noise floor at these runs: %.4f)\n",
              dist.StdDevNm(), floor);
  std::printf("maxDevNm\t%.4f\n", dist.MaxDevNm());
  std::printf("zero-sampled groups\t%zu\n", dist.ZeroGroups());
  std::printf(
      "paper expectation: stdDevNm <= ~0.1, maxDevNm <= ~0.2 at %llu runs\n",
      static_cast<unsigned long long>(spec.paper_runs));
  std::printf("experiment wall time: %.2fs\n\n", result.seconds);
}

TimingResult RunTiming(const NoisyDataset& data, int repeats,
                       uint64_t seed_base) {
  TimingResult result;
  result.stream_length = data.size();
  result.repeats = repeats;
  double total_seconds = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    auto sampler =
        RobustL0SamplerIW::Create(PaperSamplerOptions(data, seed_base + rep))
            .value();
    const auto start = std::chrono::steady_clock::now();
    sampler.InsertBatch(data.points);
    total_seconds += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    // Keep the sampler's final state observable so the loop cannot be
    // optimized away.
    if (sampler.accept_size() == 0) std::printf("(empty accept set)\n");
  }
  result.ns_per_item = total_seconds * 1e9 /
                       (static_cast<double>(data.size()) * repeats);
  return result;
}

double RunPeakSpace(const NoisyDataset& data, int seeds,
                    uint64_t seed_base) {
  double total = 0.0;
  for (int s = 0; s < seeds; ++s) {
    auto sampler =
        RobustL0SamplerIW::Create(PaperSamplerOptions(data, seed_base + s))
            .value();
    sampler.InsertBatch(data.points);
    total += static_cast<double>(sampler.PeakSpaceWords());
  }
  return total / seeds;
}

uint64_t EnvRuns(uint64_t default_runs) {
  const char* env = std::getenv("RL0_RUNS");
  if (env == nullptr) return default_runs;
  const long long v = std::atoll(env);
  return v > 0 ? static_cast<uint64_t>(v) : default_runs;
}

int EnvRepeats(int default_repeats) {
  const char* env = std::getenv("RL0_REPEATS");
  if (env == nullptr) return default_repeats;
  const int v = std::atoi(env);
  return v > 0 ? v : default_repeats;
}

}  // namespace bench
}  // namespace rl0
