// Ablation (design choice, DESIGN.md §2): the cell-sampling hash family
// and the accept-cap constant κ0.
//   (a) Mixing hash (experiments' default) vs Θ(log m)-wise independent
//       polynomial hash (theory's assumption), across independence k:
//       per-item time and sampling accuracy must match — the polynomial
//       hash costs O(k) per evaluation but changes no statistics.
//   (b) κ0 sweep: smaller caps save space but raise both the deviation
//       (fewer accepted groups to average over) and the empty-accept
//       failure rate; κ0·log m with κ0 ≈ 4 is the sweet spot the paper's
//       analysis suggests.

#include <chrono>
#include <cstdio>

#include "harness.h"

int main() {
  using namespace rl0;
  using namespace rl0::bench;
  const DatasetSpec& spec = SpecForFigure(5);  // Rand5
  const NoisyDataset data = Materialize(spec);
  const uint64_t runs = EnvRuns(8000);

  std::printf("== Ablation: hash family and accept cap (Rand5) ==\n\n");
  std::printf("-- hash family / independence k --\n");
  std::printf("%-14s %6s %10s %10s %10s\n", "family", "k", "stdDevNm",
              "maxDevNm", "ms/item");

  struct Config {
    const char* label;
    HashFamily family;
    uint32_t k;
  };
  const Config configs[] = {
      {"mix64", HashFamily::kMix64, 0},
      {"kwise-poly", HashFamily::kKWisePoly, 8},
      {"kwise-poly", HashFamily::kKWisePoly, 32},
      {"kwise-poly", HashFamily::kKWisePoly, 128},
  };
  for (const Config& config : configs) {
    const RepresentativeStream reps = ExtractRepresentatives(data);
    SampleDistribution dist(data.num_groups);
    for (uint64_t run = 0; run < runs; ++run) {
      SamplerOptions opts = PaperSamplerOptions(data, 300 + run);
      opts.hash_family = config.family;
      if (config.k > 0) opts.kwise_k = config.k;
      auto sampler = RobustL0SamplerIW::Create(opts).value();
      for (const Point& p : reps.points) sampler.Insert(p);
      Xoshiro256pp rng(SplitMix64(run * 7 + 5));
      if (const auto s = sampler.Sample(&rng)) {
        dist.Record(reps.group_of[s->stream_index]);
      }
    }
    // Timing on the full stream with THIS hash configuration.
    SamplerOptions topts = PaperSamplerOptions(data, 1);
    topts.hash_family = config.family;
    if (config.k > 0) topts.kwise_k = config.k;
    double seconds = 0.0;
    const int repeats = 3;
    for (int rep = 0; rep < repeats; ++rep) {
      auto sampler = RobustL0SamplerIW::Create(topts).value();
      const auto start = std::chrono::steady_clock::now();
      for (const Point& p : data.points) sampler.Insert(p);
      seconds += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
      if (sampler.accept_size() == 0) std::printf("(empty)\n");
    }
    const double ms_per_item =
        seconds * 1e3 / (static_cast<double>(data.size()) * repeats);
    std::printf("%-14s %6u %10.4f %10.4f %10.5f\n", config.label, config.k,
                dist.StdDevNm(), dist.MaxDevNm(), ms_per_item);
  }

  std::printf("\n-- accept cap sweep (cap = kappa0 * ceil(log2 m)) --\n");
  std::printf("%8s %8s %10s %10s %12s %12s\n", "kappa0", "cap", "stdDevNm",
              "maxDevNm", "empty rate", "peak words");
  for (double kappa0 : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const RepresentativeStream reps = ExtractRepresentatives(data);
    SampleDistribution dist(data.num_groups);
    uint64_t empty_runs = 0;
    size_t peak = 0;
    size_t cap = 0;
    for (uint64_t run = 0; run < runs; ++run) {
      SamplerOptions opts = PaperSamplerOptions(data, 800 + run);
      opts.kappa0 = kappa0;
      cap = opts.EffectiveAcceptCap();
      auto sampler = RobustL0SamplerIW::Create(opts).value();
      for (const Point& p : reps.points) sampler.Insert(p);
      peak = std::max(peak, sampler.PeakSpaceWords());
      Xoshiro256pp rng(SplitMix64(run * 11 + 3));
      if (const auto s = sampler.Sample(&rng)) {
        dist.Record(reps.group_of[s->stream_index]);
      } else {
        ++empty_runs;
      }
    }
    std::printf("%8.1f %8zu %10.4f %10.4f %12.5f %12zu\n", kappa0, cap,
                dist.StdDevNm(), dist.MaxDevNm(),
                static_cast<double>(empty_runs) / static_cast<double>(runs),
                peak);
  }
  std::printf(
      "\nexpected shape: hash families agree on accuracy; poly-hash time\n"
      "grows with k. Larger kappa0 lowers deviation and the empty-accept\n"
      "rate at the cost of space.\n");
  return 0;
}
