// Shared benchmark harness: the paper's eight evaluation datasets, the
// distribution / timing / space experiment runners, and table printing.
//
// Reproduction methodology (see DESIGN.md §3-4):
//  * Datasets follow Section 6.1: base points → rescale to unit minimum
//    pairwise distance → near-duplicates with uniform {1..100} or
//    power-law ⌈n/i⌉ counts and noise length in (0, 1/(2 d^1.5)) →
//    shuffle. α = d^{-1.5}.
//  * Distribution experiments (Figures 5-12, 15) replay only the group
//    representatives — provably equivalent for the sampling distribution
//    (iw_sampler_test.ReplayEquivalence) and ~50x faster, which is how we
//    can afford paper-scale run counts. Defaults are scaled down from the
//    paper's 200k-500k runs; set RL0_RUNS to raise them.
//  * Timing (Figure 13) and space (Figure 14) run the full streams.

#ifndef RL0_BENCH_HARNESS_H_
#define RL0_BENCH_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rl0/core/iw_sampler.h"
#include "rl0/metrics/distribution.h"
#include "rl0/stream/dataset.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace rl0 {
namespace bench {

/// One of the paper's evaluation datasets.
struct DatasetSpec {
  std::string name;      ///< Paper name (Rand5, ..., Seeds-pl).
  int figure;            ///< Paper figure number (5..12).
  uint64_t paper_runs;   ///< #runs the paper used for this dataset.
  uint64_t default_runs; ///< Our default (RL0_RUNS overrides).
  std::function<BaseDataset()> base;
  DupDistribution distribution;
};

/// The eight Section 6.1 datasets in figure order.
const std::vector<DatasetSpec>& PaperDatasets();

/// Finds a dataset spec by paper figure number (5..12).
const DatasetSpec& SpecForFigure(int figure);

/// Generates the noisy stream for a spec (deterministic per seed).
NoisyDataset Materialize(const DatasetSpec& spec, uint64_t seed = 2018);

/// The sampler configuration used throughout the Section 6 experiments:
/// high-dimension grid (side d·α, matching the generated sparsity), fast
/// mixing hash, κ0·log m accept cap.
SamplerOptions PaperSamplerOptions(const NoisyDataset& data, uint64_t seed);

/// Result of a distribution experiment.
struct DistributionResult {
  SampleDistribution distribution;
  uint64_t runs = 0;
  uint64_t empty_runs = 0;  ///< runs where the accept set was empty (≤1/m).
  double seconds = 0.0;

  DistributionResult() : distribution(1) {}
};

/// Runs `runs` independent sampler instances (fresh seeds) over the
/// representative replay of `data` and accumulates which group each
/// returned sample belongs to.
DistributionResult RunDistribution(const NoisyDataset& data, uint64_t runs,
                                   uint64_t seed_base);

/// Prints the Figure 5-12 style report: per-group count summary, a
/// histogram of counts, the paper metrics and the sampling noise floor.
void PrintDistributionReport(const DatasetSpec& spec,
                             const NoisyDataset& data,
                             const DistributionResult& result);

/// Timing result for Figure 13.
struct TimingResult {
  double ns_per_item = 0.0;
  uint64_t stream_length = 0;
  int repeats = 0;
};

/// Scans the full stream `repeats` times (fresh sampler each time,
/// single-threaded) and reports the mean per-item processing time.
TimingResult RunTiming(const NoisyDataset& data, int repeats,
                       uint64_t seed_base);

/// Peak space (words) averaged over `seeds` full-stream passes (Fig 14).
double RunPeakSpace(const NoisyDataset& data, int seeds, uint64_t seed_base);

/// Environment overrides: RL0_RUNS / RL0_REPEATS (0 = keep default).
uint64_t EnvRuns(uint64_t default_runs);
int EnvRepeats(int default_repeats);

}  // namespace bench
}  // namespace rl0

#endif  // RL0_BENCH_HARNESS_H_
