// Reproduces paper Figure 15: maxDevNm and stdDevNm of the empirical
// sampling distribution for all eight datasets, in one table. Shares the
// machinery of Figures 5-12 at a reduced default run count (RL0_RUNS
// overrides); the sampling noise floor sqrt((n-1)/runs) is printed so the
// paper's thresholds can be judged at any run count.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace rl0::bench;
  std::printf("== Figure 15: maxDevNm and stdDevNm across datasets ==\n");
  std::printf("%-10s %8s %10s %10s %12s %8s\n", "dataset", "runs",
              "stdDevNm", "maxDevNm", "noisefloor", "zeros");
  for (const DatasetSpec& spec : PaperDatasets()) {
    const rl0::NoisyDataset data = Materialize(spec);
    const uint64_t runs = EnvRuns(spec.default_runs / 2);
    const DistributionResult r = RunDistribution(data, runs, 20'000);
    std::printf("%-10s %8llu %10.4f %10.4f %12.4f %8zu\n", spec.name.c_str(),
                static_cast<unsigned long long>(r.runs),
                r.distribution.StdDevNm(), r.distribution.MaxDevNm(),
                rl0::SampleDistribution::StdDevNoiseFloor(data.num_groups,
                                                          r.runs),
                r.distribution.ZeroGroups());
  }
  std::printf(
      "\npaper expectation (at 200k-500k runs): stdDevNm <= ~0.1 and\n"
      "maxDevNm <= ~0.2 for every dataset. At reduced run counts the\n"
      "measured deviation approaches the printed noise floor, which is\n"
      "the value a perfectly uniform sampler would measure.\n");
  return 0;
}
