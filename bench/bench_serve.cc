// Serving-path overhead: what the rl0_serve line protocol costs on top
// of feeding a windowed sharded pool directly.
//
// One paper-style noisy stream (~50k points, dim 5) is fed three ways,
// same sampler options, window and shard count each time:
//
//   direct   — ShardedSwSamplerPool::FeedBorrowed in 512-point chunks +
//              one final Drain (the in-process ceiling);
//   served   — an in-process Server on a unix socket, one client
//              sending the same chunks as FEED commands (%.17g coords)
//              and awaiting each "OK fed=" — prices text encode/decode,
//              socket hops, registry locking and the CVM companion;
//   served+q — as served, with a digest standing query (every=1000)
//              firing into a second, draining subscriber connection —
//              adds trigger-boundary chunk splitting and EVENT pushes.
//
// Output: a human-readable table on stderr and ONE LINE of JSON on
// stdout. Append per PR:   ./build/bench_serve >> BENCH_serve.json
// (one JSON document per line, newest last). RL0_REPEATS overrides the
// per-path repeat count (default 3, best-of). Rows are marked
// overhead_only on a single-core host, where the server's session and
// fleet threads only price their own overhead.

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/serve/protocol.h"
#include "rl0/serve/server.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace {

using rl0::NoisyDataset;
using rl0::Point;
using rl0::SamplerOptions;
using rl0::ShardedSwSamplerPool;
using rl0::Span;

constexpr int64_t kWindow = 8192;
constexpr size_t kShards = 4;
constexpr size_t kChunk = 512;

NoisyDataset ServeStream(uint64_t seed) {
  const rl0::BaseDataset base = rl0::RandomUniform(1000, 5, seed, "Serve5");
  rl0::NearDupOptions nd;
  nd.max_dups = 100;
  nd.seed = seed + 1;
  return rl0::MakeNearDuplicates(base, nd);
}

SamplerOptions ServeOptions(const NoisyDataset& data) {
  SamplerOptions opts;
  opts.dim = data.dim;
  opts.alpha = data.alpha;
  opts.seed = 2018;
  opts.expected_stream_length = data.size();
  return opts;
}

// ------------------------------------------------- tiny blocking client

int ConnectUnix(const std::string& path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until one non-EVENT OK/ERR terminator; returns true on OK.
bool AwaitOk(int fd, rl0::serve::LineDecoder* decoder) {
  char buf[4096];
  std::string line;
  bool in_event = false;
  for (;;) {
    for (;;) {
      const auto event = decoder->Next(&line);
      if (event == rl0::serve::LineDecoder::Event::kNone) break;
      if (event == rl0::serve::LineDecoder::Event::kOversized) continue;
      if (in_event) {
        if (line == "END") in_event = false;
        continue;
      }
      if (line.rfind("EVENT", 0) == 0) {
        in_event = true;
        continue;
      }
      if (line.rfind("OK", 0) == 0) return true;
      if (line.rfind("ERR", 0) == 0) return false;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    decoder->Append(buf, static_cast<size_t>(n));
  }
}

std::string FeedCommand(const std::string& tenant,
                        Span<const Point> points) {
  std::string cmd = "FEED " + tenant;
  char num[40];
  for (size_t i = 0; i < points.size(); ++i) {
    cmd += ' ';
    for (size_t d = 0; d < points[i].dim(); ++d) {
      std::snprintf(num, sizeof(num), "%.17g", points[i][d]);
      if (d > 0) cmd += ',';
      cmd += num;
    }
  }
  cmd += '\n';
  return cmd;
}

template <typename Run>
double BestRate(int repeats, size_t points, Run run) {
  double best_seconds = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    run(rep);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
  }
  return static_cast<double>(points) / best_seconds;
}

}  // namespace

int main() {
  int repeats = 3;
  if (const char* env = std::getenv("RL0_REPEATS")) {
    repeats = std::max(1, std::atoi(env));
  }
  const unsigned cores = std::thread::hardware_concurrency();

  const NoisyDataset data = ServeStream(2018);
  const SamplerOptions opts = ServeOptions(data);
  const Span<const Point> all(data.points.data(), data.points.size());

  // Direct ceiling.
  const double direct =
      BestRate(repeats, data.size(), [&](int) {
        auto pool = ShardedSwSamplerPool::Create(opts, kWindow, kShards)
                        .value();
        for (size_t off = 0; off < all.size(); off += kChunk) {
          pool.FeedBorrowed(all.subspan(off, kChunk));
        }
        pool.Drain();
      });

  // One server hosts every repeat; each repeat is a fresh tenant.
  rl0::serve::Server::Options server_options;
  server_options.unix_path =
      "/tmp/rl0-bench-" + std::to_string(::getpid()) + ".sock";
  server_options.fleet_threads = kShards;
  auto server = rl0::serve::Server::Start(server_options).value();

  char create_tail[160];
  std::snprintf(create_tail, sizeof(create_tail),
                " dim=%zu alpha=%.17g window=%lld shards=%zu seed=2018 "
                "m=%zu\n",
                opts.dim, opts.alpha, static_cast<long long>(kWindow),
                kShards, data.size());

  int tenant_counter = 0;
  const auto serve_run = [&](bool subscribe) {
    const std::string tenant = "b" + std::to_string(tenant_counter++);
    const int fd = ConnectUnix(server_options.unix_path);
    if (fd < 0) std::abort();
    rl0::serve::LineDecoder decoder(1 << 20);
    if (!SendAll(fd, "CREATE " + tenant + create_tail) ||
        !AwaitOk(fd, &decoder)) {
      std::abort();
    }
    int sub_fd = -1;
    std::thread drainer;
    if (subscribe) {
      sub_fd = ConnectUnix(server_options.unix_path);
      rl0::serve::LineDecoder sub_decoder(1 << 20);
      if (sub_fd < 0 ||
          !SendAll(sub_fd, "SUBSCRIBE " + tenant + " digest every=1000\n") ||
          !AwaitOk(sub_fd, &sub_decoder)) {
        std::abort();
      }
      drainer = std::thread([sub_fd] {
        char buf[4096];
        while (::recv(sub_fd, buf, sizeof(buf), 0) > 0) {
        }
      });
    }
    for (size_t off = 0; off < all.size(); off += kChunk) {
      if (!SendAll(fd, FeedCommand(tenant, all.subspan(off, kChunk))) ||
          !AwaitOk(fd, &decoder)) {
        std::abort();
      }
    }
    if (!SendAll(fd, "CLOSE " + tenant + "\n") || !AwaitOk(fd, &decoder)) {
      std::abort();
    }
    ::close(fd);
    if (subscribe) {
      ::shutdown(sub_fd, SHUT_RDWR);
      drainer.join();
      ::close(sub_fd);
    }
  };

  const double served =
      BestRate(repeats, data.size(), [&](int) { serve_run(false); });
  const double served_sub =
      BestRate(repeats, data.size(), [&](int) { serve_run(true); });
  server->Shutdown();

  std::fprintf(stderr,
               "bench_serve: %zu points dim=%zu shards=%zu window=%lld\n"
               "  direct   %12.0f points/sec\n"
               "  served   %12.0f points/sec (%.2fx of direct)\n"
               "  served+q %12.0f points/sec (%.2fx of direct)\n",
               data.size(), opts.dim, kShards,
               static_cast<long long>(kWindow), direct, served,
               served / direct, served_sub, served_sub / direct);
  std::printf(
      "{\"bench\": \"serve\", \"points\": %zu, \"dim\": %zu, "
      "\"shards\": %zu, \"window\": %lld, "
      "\"direct_points_per_sec\": %.0f, "
      "\"served_points_per_sec\": %.0f, \"served_relative\": %.3f, "
      "\"served_subscribed_points_per_sec\": %.0f, "
      "\"served_subscribed_relative\": %.3f%s}\n",
      data.size(), opts.dim, kShards, static_cast<long long>(kWindow),
      direct, served, served / direct, served_sub, served_sub / direct,
      // The server adds session + fleet threads; on one core the
      // comparison only prices their overhead.
      cores == 1 ? ", \"overhead_only\": true" : "");
  return 0;
}
