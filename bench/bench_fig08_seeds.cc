// Reproduces paper Figure 8: the empirical sampling distribution of
// Algorithm 1 on the seeds dataset (see bench/harness.h for methodology).

#include "fig_main.h"

int main() { return rl0::bench::RunFigure(8); }
